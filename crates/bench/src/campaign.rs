//! Parallel fault-campaign runner: sweeps `rate × seed × benchmark ×
//! mode` grids and streams one JSON-lines record per cell.
//!
//! Determinism is the design constraint everything else bends around:
//!
//! * every cell is rendered by a **pure function** of the campaign spec
//!   and the cell parameters (each simulation owns its RNG streams, so
//!   cells never share mutable state);
//! * cells are enumerated in a fixed nested order (benchmark → mode →
//!   rate → seed) and records are **emitted in cell order** regardless
//!   of which worker finished first — `--threads N` output is
//!   byte-identical to `--threads 1` (golden-tested);
//! * a campaign interrupted mid-run resumes from the partial file:
//!   [`resume_point`] finds the last complete line, the runner recomputes
//!   only the missing tail, and the final file is byte-identical to an
//!   uninterrupted run.
//!
//! The pool is the shared [`gnna_executor::Executor`]: a std-only
//! work-stealing loop (cheap dynamic load balancing — passthrough cells
//! at high rates run much longer than protected cells at rate zero)
//! whose in-order emission contract is exactly the byte-identity
//! guarantee the campaign golden rests on. The pool used to live in
//! this module; it was lifted out so the `gnna-serve` daemon and future
//! sweep tools ride the same scheduler.

use crate::accuracy::{run_with_faults, Accuracy, FaultRun};
use crate::{build_case, BenchCase, BenchError, Scale};
use gnna_core::config::AcceleratorConfig;
use gnna_core::energy::EnergyModel;
use gnna_core::stats::RecoverySummary;
use gnna_executor::{Executor, ExecutorError};
use gnna_faults::{CrcDomain, EccDomain, FaultPlan, MeshDir, PhysicalRates, RecoveryMode};
use gnna_models::ModelKind;
use gnna_telemetry::energy::CostClass;
use gnna_telemetry::json;
use std::fmt;

/// Protection mode of a campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All protection codes active: ECC corrects, CRC retransmits.
    Protected,
    /// Error pass-through: double-bit ECC and CRC failures deliver the
    /// corrupted word into the dataflow instead of retrying.
    Passthrough,
    /// Protected, plus permanent defects: one dead tile (and one dead
    /// mesh link when the mesh is at least 2×2), exercising the
    /// graceful-degradation remap/detour paths.
    Degraded,
    /// Protected, with checkpoint/rollback recovery: layer-boundary
    /// state is snapshotted and an exhausted protection budget (finite
    /// DRAM re-read budget in this mode) rolls back and replays instead
    /// of killing the cell.
    Rollback,
}

impl Mode {
    /// The classic protection modes in canonical grid order (the
    /// default sweep; opt into [`Mode::Rollback`] explicitly).
    pub const ALL: [Mode; 3] = [Mode::Protected, Mode::Passthrough, Mode::Degraded];

    /// Stable lower-case name (JSONL `mode` field, CLI value).
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Protected => "protected",
            Mode::Passthrough => "passthrough",
            Mode::Degraded => "degraded",
            Mode::Rollback => "rollback",
        }
    }

    /// Parses a CLI/JSON mode name.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "protected" => Some(Mode::Protected),
            "passthrough" => Some(Mode::Passthrough),
            "degraded" => Some(Mode::Degraded),
            "rollback" => Some(Mode::Rollback),
            _ => None,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unit of the swept `rates` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateUnit {
    /// Raw per-event probabilities, applied to every transient site
    /// (the default; rates must lie in `[0, 1]`).
    #[default]
    PerEvent,
    /// Physical units: each rate is read as both a link FIT (failures
    /// per 10⁹ link-hours) and a DRAM upset rate in upsets/Gbit·h, and
    /// converted to per-event probabilities with
    /// [`FaultPlan::from_physical`] (scaled by
    /// [`CampaignSpec::acceleration`]).
    Fit,
}

impl RateUnit {
    /// Stable lower-case name (JSONL `rate_unit` field, CLI value).
    pub fn as_str(self) -> &'static str {
        match self {
            RateUnit::PerEvent => "event",
            RateUnit::Fit => "fit",
        }
    }

    /// Parses a CLI/JSON rate-unit name.
    pub fn parse(s: &str) -> Option<RateUnit> {
        match s {
            "event" => Some(RateUnit::PerEvent),
            "fit" => Some(RateUnit::Fit),
            _ => None,
        }
    }
}

impl fmt::Display for RateUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The full campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Benchmark pairs to sweep (model, Table V input name).
    pub benchmarks: Vec<(ModelKind, &'static str)>,
    /// Dataset scale.
    pub scale: Scale,
    /// Accelerator configuration.
    pub config: AcceleratorConfig,
    /// Per-event fault rates to sweep (applied to the DRAM transient,
    /// DRAM stuck-line and NoC sites alike).
    pub rates: Vec<f64>,
    /// Fault-plan seeds to sweep.
    pub seeds: Vec<u64>,
    /// Protection modes to sweep.
    pub modes: Vec<Mode>,
    /// Fraction of DRAM faults that are (uncorrectable) double-bit
    /// errors — the knob that separates protected retries from
    /// pass-through silent corruption.
    pub double_bit_fraction: f64,
    /// Selective protection domains to sweep as `(ECC, CRC)` pairs.
    /// The default single `(Both, All)` entry reproduces the legacy
    /// grid exactly (same cell count, same indices, same bytes).
    pub domains: Vec<(EccDomain, CrcDomain)>,
    /// Unit the `rates` axis is expressed in.
    pub rate_unit: RateUnit,
    /// Acceleration factor applied to physically calibrated rates
    /// (ignored for [`RateUnit::PerEvent`]).
    pub acceleration: f64,
}

impl CampaignSpec {
    /// A small default grid over one benchmark.
    pub fn new(config: AcceleratorConfig, scale: Scale) -> Self {
        CampaignSpec {
            benchmarks: vec![(ModelKind::Gcn, "Cora")],
            scale,
            config,
            rates: vec![0.0, 1e-4, 1e-3, 1e-2],
            seeds: vec![1, 2],
            modes: Mode::ALL.to_vec(),
            double_bit_fraction: 0.25,
            domains: vec![(EccDomain::Both, CrcDomain::All)],
            rate_unit: RateUnit::PerEvent,
            acceleration: 1.0,
        }
    }

    /// Enumerates every cell in canonical order (benchmark → mode →
    /// domain → rate → seed). The position in this vector is the cell
    /// index that appears in the JSONL record. With the default
    /// single-domain axis the enumeration is identical to the legacy
    /// benchmark → mode → rate → seed order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for &(model, input) in &self.benchmarks {
            for &mode in &self.modes {
                for &(ecc, crc) in &self.domains {
                    for &rate in &self.rates {
                        for &seed in &self.seeds {
                            out.push(Cell {
                                index: out.len(),
                                model,
                                input,
                                mode,
                                ecc,
                                crc,
                                rate,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The fault plan for one cell. Pure: the same cell always maps to
    /// the same plan.
    pub fn plan_for(&self, cell: &Cell) -> FaultPlan {
        let mut plan = match self.rate_unit {
            RateUnit::PerEvent => FaultPlan::new(cell.seed)
                .with_mem_rate(cell.rate)
                .with_noc_rate(cell.rate)
                .with_mem_stuck_rate(cell.rate),
            // Physical calibration: the swept number is read in
            // deployment units for both transient sites (stuck lines
            // are a manufacturing defect, not a rate, and stay off).
            RateUnit::Fit => FaultPlan::from_physical(
                cell.seed,
                &PhysicalRates {
                    dram_upsets_per_gbit_hour: cell.rate,
                    link_fit: cell.rate,
                    acceleration: self.acceleration,
                    ..PhysicalRates::default()
                },
            ),
        };
        plan = plan
            .with_double_bit_fraction(self.double_bit_fraction)
            .with_ecc_domain(cell.ecc)
            .with_crc_domain(cell.crc);
        match cell.mode {
            Mode::Protected => {}
            Mode::Passthrough => plan = plan.with_passthrough(true),
            Mode::Degraded => {
                plan = plan.with_dead_tile(1);
                let topo = &self.config.topology;
                if topo.width() >= 2 && topo.height() >= 2 {
                    plan = plan.with_dead_link(0, 0, MeshDir::East);
                }
            }
            // A finite re-read budget gives rollback something to
            // recover from: with the default infinite budget no DRAM
            // error can ever exhaust, so the mode would never roll back.
            Mode::Rollback => {
                plan = plan
                    .with_recovery(RecoveryMode::Rollback)
                    .with_mem_retry_budget(1);
            }
        }
        plan
    }
}

/// One grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Position in [`CampaignSpec::cells`] (and the JSONL `cell` field).
    pub index: usize,
    /// Benchmark model.
    pub model: ModelKind,
    /// Benchmark input name.
    pub input: &'static str,
    /// Protection mode.
    pub mode: Mode,
    /// DRAM region ECC protects in this cell.
    pub ecc: EccDomain,
    /// Flit traffic link CRC protects in this cell.
    pub crc: CrcDomain,
    /// Swept fault rate (in [`CampaignSpec::rate_unit`] units).
    pub rate: f64,
    /// Fault-plan seed.
    pub seed: u64,
}

impl Cell {
    /// `ecc/crc` protection-domain label, or `None` for the default
    /// fully protected pair (which is omitted from the JSONL record).
    pub fn domain_label(&self) -> Option<String> {
        if self.ecc == EccDomain::Both && self.crc == CrcDomain::All {
            None
        } else {
            Some(format!("{}/{}", self.ecc, self.crc))
        }
    }
}

/// Energy of the checkpoint/rollback traffic in integer picojoules,
/// priced with the default [`EnergyModel`] — the same figure the live
/// system charges into its `system.energy.checkpoint_pj` ledger site.
pub fn checkpoint_pj(rec: &RecoverySummary) -> u64 {
    let rates = EnergyModel::default().rates();
    let fj = rates
        .charge_fj(CostClass::SramWord, rec.checkpoint_sram_words)
        .saturating_add(rates.charge_fj(CostClass::NocByteHop, rec.checkpoint_noc_byte_hops))
        .saturating_add(rates.charge_fj(CostClass::DramByte, rec.checkpoint_dram_bytes));
    fj / 1000
}

fn push_kv_str(out: &mut String, key: &str, v: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    json::escape_into(out, v);
    out.push_str("\",");
}

fn push_kv_u64(out: &mut String, key: &str, v: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
    out.push(',');
}

fn push_kv_f64(out: &mut String, key: &str, v: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&json::number(v));
    out.push(',');
}

/// Renders one cell: runs the simulation and formats the JSONL record
/// (no trailing newline). Pure per cell, so any worker can render any
/// cell and the bytes come out the same.
///
/// # Errors
///
/// Propagates construction errors and non-fault simulation errors
/// (unrecoverable faults are an expected *outcome*, not an error).
pub fn render_cell(
    spec: &CampaignSpec,
    case: &BenchCase,
    cell: &Cell,
) -> Result<String, BenchError> {
    let plan = spec.plan_for(cell);
    let run = run_with_faults(case, &spec.config, &plan)?;
    let (status, site, msg, report, accuracy) = match &run {
        FaultRun::Completed { report, accuracy } => {
            ("ok", String::new(), String::new(), Some(report), *accuracy)
        }
        FaultRun::Unrecoverable { site, msg } => (
            "unrecoverable",
            site.clone(),
            msg.clone(),
            None,
            Accuracy::default(),
        ),
    };
    let mut out = String::with_capacity(512);
    out.push('{');
    push_kv_u64(&mut out, "cell", cell.index as u64);
    push_kv_str(&mut out, "model", cell.model.name());
    push_kv_str(&mut out, "input", cell.input);
    push_kv_str(&mut out, "config", &spec.config.name);
    push_kv_str(&mut out, "mode", cell.mode.as_str());
    push_kv_f64(&mut out, "rate", cell.rate);
    push_kv_u64(&mut out, "seed", cell.seed);
    push_kv_str(&mut out, "status", status);
    push_kv_str(&mut out, "site", &site);
    push_kv_str(&mut out, "msg", &msg);
    let (cycles, res, deg) = match report {
        Some(r) => (r.total_cycles, r.resilience, r.degraded),
        None => (0, Default::default(), Default::default()),
    };
    let total = res.total();
    push_kv_u64(&mut out, "total_cycles", cycles);
    push_kv_u64(&mut out, "injected", total.injected);
    push_kv_u64(&mut out, "corrected", total.corrected);
    push_kv_u64(&mut out, "retried", total.retried);
    push_kv_u64(&mut out, "unrecoverable", total.unrecoverable);
    push_kv_u64(&mut out, "sdc", total.sdc);
    push_kv_u64(&mut out, "mem_injected", res.mem.injected);
    push_kv_u64(&mut out, "mem_sdc", res.mem.sdc);
    push_kv_u64(&mut out, "noc_injected", res.noc.injected);
    push_kv_u64(&mut out, "noc_sdc", res.noc.sdc);
    push_kv_u64(&mut out, "dead_tiles", deg.dead_tiles);
    push_kv_u64(&mut out, "dead_links", deg.dead_links);
    push_kv_u64(&mut out, "remapped_vertices", deg.remapped_vertices);
    push_kv_u64(&mut out, "rows", accuracy.rows);
    push_kv_u64(&mut out, "elements", accuracy.elements);
    push_kv_u64(&mut out, "label_flips", accuracy.label_flips);
    push_kv_u64(&mut out, "nonfinite", accuracy.nonfinite);
    push_kv_f64(&mut out, "max_rel_err", accuracy.max_rel_err);
    push_kv_f64(&mut out, "mean_rel_err", accuracy.mean_rel_err);
    // Extension keys are emitted only when they differ from their
    // defaults, so legacy grids (fully protected domains, per-event
    // rates, no recovery) keep producing byte-identical records.
    if let Some(domain) = cell.domain_label() {
        push_kv_str(&mut out, "domain", &domain);
    }
    if spec.rate_unit != RateUnit::PerEvent {
        push_kv_str(&mut out, "rate_unit", spec.rate_unit.as_str());
    }
    let rec = report.map(|r| r.recovery).unwrap_or_default();
    if rec.any() {
        push_kv_u64(&mut out, "checkpoints", rec.checkpoints);
        push_kv_u64(&mut out, "rollbacks", rec.rollbacks);
        push_kv_u64(&mut out, "replayed_cycles", rec.replayed_cycles);
        push_kv_u64(&mut out, "checkpoint_pj", checkpoint_pj(&rec));
    }
    // Replace the trailing comma with the closing brace.
    out.pop();
    out.push('}');
    Ok(out)
}

/// Finds where a partially written campaign file can resume: returns
/// `(complete_lines, byte_len_of_complete_prefix)`. A trailing partial
/// line (interrupted mid-write) is excluded so the caller truncates it
/// and recomputes that cell.
pub fn resume_point(existing: &str) -> (usize, usize) {
    let mut lines = 0;
    let mut prefix = 0;
    for (i, b) in existing.bytes().enumerate() {
        if b == b'\n' {
            lines += 1;
            prefix = i + 1;
        }
    }
    (lines, prefix)
}

/// Validates that a resumable prefix actually matches this campaign's
/// grid: every line parses as JSON and carries the cell index of its
/// line number (so resuming a file from a *different* grid fails loudly
/// instead of silently producing a frankenfile).
///
/// # Errors
///
/// Returns a description of the first mismatching line.
pub fn validate_prefix(existing: &str, cells: &[Cell]) -> Result<(), BenchError> {
    for (i, line) in existing.lines().enumerate() {
        if i >= cells.len() {
            return Err(format!(
                "existing file has {} lines but the grid only has {} cells",
                existing.lines().count(),
                cells.len()
            )
            .into());
        }
        let v = json::parse(line).map_err(|e| format!("line {}: bad JSON: {e}", i + 1))?;
        let cell = v
            .get("cell")
            .and_then(|c| c.as_u64())
            .ok_or_else(|| format!("line {}: missing cell index", i + 1))?;
        if cell != i as u64 {
            return Err(format!("line {} holds cell {cell}, expected {i}", i + 1).into());
        }
    }
    Ok(())
}

/// Runs the campaign cells `start_cell..` on `threads` workers, calling
/// `sink` once per finished record **in cell order** (each line has no
/// trailing newline). Returns the number of cells rendered.
///
/// The sink sees byte-identical lines whatever `threads` is; with
/// `start_cell > 0` it sees exactly the lines a fresh run would have
/// produced after the resumed prefix.
///
/// # Errors
///
/// Propagates benchmark-construction and render errors. On a worker
/// error the remaining cells are abandoned (already-sunk lines stay
/// valid for a later resume).
pub fn run(
    spec: &CampaignSpec,
    threads: usize,
    start_cell: usize,
    mut sink: impl FnMut(&str) -> Result<(), BenchError>,
) -> Result<usize, BenchError> {
    let cells = spec.cells();
    if start_cell >= cells.len() {
        return Ok(0);
    }
    // Build each unique benchmark once; workers share them read-only.
    let mut cases: Vec<((ModelKind, &'static str), BenchCase)> = Vec::new();
    for c in &cells[start_cell..] {
        if !cases.iter().any(|(k, _)| *k == (c.model, c.input)) {
            cases.push((
                (c.model, c.input),
                build_case(c.model, c.input, spec.scale)?,
            ));
        }
    }
    let case_for = |cell: &Cell| {
        &cases
            .iter()
            .find(|(k, _)| *k == (cell.model, cell.input))
            .expect("case prebuilt for every cell")
            .1
    };

    let executor = Executor::new(threads);
    executor
        .run_ordered(
            cells.len(),
            start_cell,
            |idx| {
                let cell = &cells[idx];
                render_cell(spec, case_for(cell), cell).map_err(|e| e.to_string())
            },
            |_, line| sink(&line).map_err(|e| e.to_string()),
        )
        .map_err(|e| match e {
            // Sink errors are the caller's own I/O failures; strip the
            // executor framing so messages read as before the extraction.
            ExecutorError::Sink { message, .. } | ExecutorError::Worker { message, .. } => {
                BenchError::from(message)
            }
            panic @ ExecutorError::Panic { .. } => BenchError::from(panic.to_string()),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        let mut s = CampaignSpec::new(AcceleratorConfig::gpu_iso_bandwidth(), Scale::Smoke);
        s.rates = vec![0.0, 0.01];
        s.seeds = vec![1, 2];
        s.modes = vec![Mode::Protected, Mode::Passthrough];
        s
    }

    #[test]
    fn cells_enumerate_in_canonical_order() {
        let s = spec();
        let cells = s.cells();
        assert_eq!(cells.len(), 8); // 1 benchmark × 2 modes × 2 rates × 2 seeds
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        assert_eq!(cells[0].mode, Mode::Protected);
        assert_eq!(cells[0].rate, 0.0);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[2].rate, 0.01);
        assert_eq!(cells[4].mode, Mode::Passthrough);
    }

    #[test]
    fn plans_reflect_the_mode() {
        let s = spec();
        let cells = s.cells();
        let protected = s.plan_for(&cells[2]);
        assert_eq!(protected.mem_rate, 0.01);
        assert!(!protected.passthrough);
        let pass = s.plan_for(&cells[6]);
        assert!(pass.passthrough);
        let mut deg_spec = spec();
        deg_spec.modes = vec![Mode::Degraded];
        let deg = deg_spec.plan_for(&deg_spec.cells()[0]);
        assert_eq!(deg.dead_tiles, vec![1]);
        assert!(!deg.dead_links.is_empty());
        assert!(!deg.passthrough);
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [
            Mode::Protected,
            Mode::Passthrough,
            Mode::Degraded,
            Mode::Rollback,
        ] {
            assert_eq!(Mode::parse(m.as_str()), Some(m));
        }
        assert_eq!(Mode::parse("bogus"), None);
        for u in [RateUnit::PerEvent, RateUnit::Fit] {
            assert_eq!(RateUnit::parse(u.as_str()), Some(u));
        }
        assert_eq!(RateUnit::parse("bogus"), None);
    }

    #[test]
    fn rollback_and_domain_axes_extend_the_grid() {
        let mut s = spec();
        s.modes = vec![Mode::Rollback];
        s.domains = vec![
            (EccDomain::Both, CrcDomain::All),
            (EccDomain::WeightsOnly, CrcDomain::DataOnly),
        ];
        let cells = s.cells();
        assert_eq!(cells.len(), 8); // 1 benchmark × 1 mode × 2 domains × 2 rates × 2 seeds
        assert_eq!(cells[0].domain_label(), None);
        assert_eq!(cells[4].domain_label().as_deref(), Some("weights/data"));
        let plan = s.plan_for(&cells[6]);
        assert_eq!(plan.recovery, RecoveryMode::Rollback);
        assert_eq!(plan.mem_retry_budget, 1);
        assert_eq!(plan.ecc_domain, EccDomain::WeightsOnly);
        assert_eq!(plan.crc_domain, CrcDomain::DataOnly);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn fit_rates_convert_through_physical_calibration() {
        let mut s = spec();
        s.rate_unit = RateUnit::Fit;
        s.acceleration = 1e15;
        s.rates = vec![1000.0];
        let plan = s.plan_for(&s.cells()[0]);
        // 1000 FIT / 1000 upsets per Gbit·h at the 2.4 GHz default
        // clock are astronomically small per event; the acceleration
        // factor lifts them into observable-but-valid territory.
        assert!(plan.noc_rate > 0.0 && plan.noc_rate < 1.0, "{}", plan.noc_rate);
        assert!(plan.mem_rate > 0.0 && plan.mem_rate < 1.0, "{}", plan.mem_rate);
        assert_eq!(plan.mem_stuck_rate, 0.0);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn resume_point_excludes_partial_tail() {
        assert_eq!(resume_point(""), (0, 0));
        assert_eq!(resume_point("{\"cell\":0}\n"), (1, 11));
        assert_eq!(resume_point("{\"cell\":0}\n{\"cell\":1"), (1, 11));
        assert_eq!(resume_point("{\"cell\":0}\n{\"cell\":1}\n"), (2, 22));
    }

    #[test]
    fn validate_prefix_rejects_foreign_files() {
        let s = spec();
        let cells = s.cells();
        assert!(validate_prefix("", &cells).is_ok());
        assert!(validate_prefix("{\"cell\":0}\n{\"cell\":1}\n", &cells).is_ok());
        assert!(validate_prefix("{\"cell\":5}\n", &cells).is_err());
        assert!(validate_prefix("not json\n", &cells).is_err());
        let long = "{\"cell\":0}\n".repeat(cells.len() + 1);
        assert!(validate_prefix(&long, &cells).is_err());
    }
}
