//! Shared infrastructure for the table/figure benchmark harnesses.
//!
//! Each `cargo bench` target in this crate regenerates one table or
//! figure of the paper (see `DESIGN.md` §3 for the index). This library
//! holds the pieces they share: the benchmark-pair definitions at paper
//! scale, dataset construction, model compilation, and the
//! simulate-one-configuration runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod campaign;
pub mod report;

use gnna_baselines::table7::MeasuredLatency;
use gnna_core::config::AcceleratorConfig;
use gnna_core::layers::{compile_gat, compile_gcn, compile_mpnn, compile_pgnn, CompiledProgram};
use gnna_core::stats::SimReport;
use gnna_core::system::System;
use gnna_faults::FaultPlan;
use gnna_graph::{datasets, Dataset};
use gnna_models::{Gat, Gcn, GcnNorm, ModelKind, Mpnn, Pgnn};
use gnna_telemetry::profile::{shared_profiler, SharedProfiler};
use gnna_telemetry::{shared, MetricsRegistry, SharedTracer, TraceLevel, Tracer};
use std::error::Error;

/// A boxed error for harness code.
pub type BenchError = Box<dyn Error>;

/// Scale at which to build a benchmark pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The full Table V dataset (used by `cargo bench`).
    Paper,
    /// A small stand-in for CI-speed smoke runs.
    Smoke,
}

/// One runnable benchmark pair: dataset plus compiled program.
#[derive(Debug)]
pub struct BenchCase {
    /// The model family.
    pub model: ModelKind,
    /// Input dataset (Table V name at paper scale).
    pub input: &'static str,
    /// The generated dataset.
    pub dataset: Dataset,
    /// The compiled accelerator program.
    pub program: CompiledProgram,
    /// Useful multiply–accumulates of one inference (for reporting).
    pub macs: u64,
    /// Functional-reference output rows from the `gnna-models` forward
    /// pass: one row per vertex (in instance order) for vertex-output
    /// models, one row per graph for readout models (MPNN). The fault
    /// campaign's accuracy harness compares simulated outputs against
    /// these.
    pub reference: Vec<Vec<f32>>,
}

/// The model hyper-parameters used throughout: GCN hidden 16 (Kipf),
/// GAT 8 heads × 8, MPNN hidden 64 with 3 message-passing steps and the
/// Gilmer edge network, PGNN: 8 layers over powers {0, 1, 2, 4} with
/// hidden 16 (the Line-GNN component configuration; see EXPERIMENTS.md).
pub const MODEL_SEED: u64 = 0xD0C5;

/// Builds one of the six Table VII benchmark pairs.
///
/// # Errors
///
/// Propagates dataset-generation and compilation errors.
pub fn build_case(
    model: ModelKind,
    input: &'static str,
    scale: Scale,
) -> Result<BenchCase, BenchError> {
    let seed = 42;
    let dataset = match (input, scale) {
        ("Cora", Scale::Paper) => datasets::cora(seed)?,
        ("Citeseer", Scale::Paper) => datasets::citeseer(seed)?,
        ("Pubmed", Scale::Paper) => datasets::pubmed(seed)?,
        ("QM9_1000", Scale::Paper) => datasets::qm9_1000(seed)?,
        ("DBLP_1", Scale::Paper) => datasets::dblp_1(seed)?,
        ("Cora", Scale::Smoke) => datasets::cora_scaled(120, 64, 7, seed)?,
        ("Citeseer", Scale::Smoke) => datasets::cora_scaled(140, 96, 6, seed)?,
        ("Pubmed", Scale::Smoke) => datasets::cora_scaled(300, 48, 3, seed)?,
        ("QM9_1000", Scale::Smoke) => datasets::qm9_scaled(20, seed)?,
        ("DBLP_1", Scale::Smoke) => datasets::dblp_scaled(60, seed)?,
        _ => return Err(format!("unknown input {input}").into()),
    };
    let f = dataset.vertex_features();
    let out = dataset.output_features;
    let (program, macs, reference) = match model {
        ModelKind::Gcn => {
            let m = Gcn::for_dataset(f, 16, out, MODEL_SEED)?.with_norm(GcnNorm::Mean);
            let macs = m.inference_macs(&dataset.instances[0].graph);
            let mut reference = Vec::new();
            for inst in &dataset.instances {
                let r = m.forward(&inst.graph, &inst.x)?;
                reference.extend((0..r.rows()).map(|i| r.row(i).to_vec()));
            }
            (compile_gcn(&m)?, macs, reference)
        }
        ModelKind::Gat => {
            let m = Gat::for_dataset(f, out, MODEL_SEED)?;
            let macs = m.inference_macs(&dataset.instances[0].graph);
            let mut reference = Vec::new();
            for inst in &dataset.instances {
                let r = m.forward(&inst.graph, &inst.x)?;
                reference.extend((0..r.rows()).map(|i| r.row(i).to_vec()));
            }
            (compile_gat(&m)?, macs, reference)
        }
        ModelKind::Mpnn => {
            let m = Mpnn::for_dataset_gilmer(f, dataset.edge_features(), 64, out, 3, MODEL_SEED)?;
            let macs = dataset
                .instances
                .iter()
                .map(|i| m.inference_macs(&i.graph))
                .sum();
            let r = m.forward_dataset(&dataset.instances)?;
            let reference = (0..r.rows()).map(|i| r.row(i).to_vec()).collect();
            (compile_mpnn(&m)?, macs, reference)
        }
        ModelKind::Pgnn => {
            let m = Pgnn::deep(&[0, 1, 2, 4], f, 16, out, 9, MODEL_SEED)?;
            let macs = m.inference_macs(&dataset.instances[0].graph);
            let mut reference = Vec::new();
            for inst in &dataset.instances {
                let r = m.forward(&inst.graph, &inst.x)?;
                reference.extend((0..r.rows()).map(|i| r.row(i).to_vec()));
            }
            (compile_pgnn(&m)?, macs, reference)
        }
    };
    Ok(BenchCase {
        model,
        input,
        dataset,
        program,
        macs,
        reference,
    })
}

/// Simulates `case` on `config`; returns the report.
///
/// # Errors
///
/// Propagates simulator construction/stall errors.
pub fn simulate(case: &BenchCase, config: &AcceleratorConfig) -> Result<SimReport, BenchError> {
    let mut sys = System::new(config, &case.dataset.instances, case.program.clone())?;
    Ok(sys.run()?)
}

/// A simulation run with telemetry attached.
#[derive(Debug)]
pub struct TracedRun {
    /// The usual simulation report.
    pub report: SimReport,
    /// The tracer holding the Chrome-trace event stream.
    pub tracer: SharedTracer,
    /// Module counters harvested after the run. When host profiling is
    /// enabled the `host.profile.*` family is merged in here too.
    pub metrics: MetricsRegistry,
    /// The host-phase profiler (`Some` only when
    /// [`TraceOptions::profile_sample_every`] asked for one); use
    /// [`HostProfiler::collapsed`](gnna_telemetry::HostProfiler::collapsed)
    /// for the flamegraph export.
    pub profiler: Option<SharedProfiler>,
}

/// Simulates `case` on `config` with a tracer attached at `level`; the
/// returned [`TracedRun`] carries the trace and the harvested metrics.
///
/// At [`TraceLevel::Off`] this is behaviourally identical to
/// [`simulate`] (the tracer records nothing and the metrics registry is
/// still populated from the final counters).
///
/// # Errors
///
/// Propagates simulator construction/stall errors.
pub fn simulate_traced(
    case: &BenchCase,
    config: &AcceleratorConfig,
    level: TraceLevel,
) -> Result<TracedRun, BenchError> {
    simulate_traced_opts(case, config, &TraceOptions::at_level(level))
}

/// Knobs for a traced run beyond the bare [`TraceLevel`].
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Trace detail level.
    pub level: TraceLevel,
    /// Flight-recorder ring size (`None` keeps the tracer default of 256;
    /// `Some(0)` disables the ring entirely).
    pub flight_capacity: Option<usize>,
    /// Deterministic fault-injection plan (`None` — and empty plans —
    /// leave the run bit-identical to a fault-free simulation).
    pub fault_plan: Option<FaultPlan>,
    /// Host-phase profiling: `Some(n)` attaches a
    /// [`HostProfiler`](gnna_telemetry::HostProfiler) sampling one cycle
    /// in `n`. `None` (the default) attaches nothing and leaves the run
    /// bit-identical to an unprofiled simulation.
    pub profile_sample_every: Option<u64>,
}

impl TraceOptions {
    /// Options with the given level and default flight-recorder capacity.
    pub fn at_level(level: TraceLevel) -> Self {
        Self {
            level,
            flight_capacity: None,
            fault_plan: None,
            profile_sample_every: None,
        }
    }

    /// Same options with host profiling at the given sampling period.
    #[must_use]
    pub fn with_profile(mut self, sample_every: u64) -> Self {
        self.profile_sample_every = Some(sample_every);
        self
    }
}

/// [`simulate_traced`] with explicit [`TraceOptions`] (e.g. the
/// `--flight-capacity` flag of `gnna-sim`).
///
/// # Errors
///
/// Propagates simulator construction/stall errors.
pub fn simulate_traced_opts(
    case: &BenchCase,
    config: &AcceleratorConfig,
    opts: &TraceOptions,
) -> Result<TracedRun, BenchError> {
    let mut sys = System::new(config, &case.dataset.instances, case.program.clone())?;
    let tracer = shared(match opts.flight_capacity {
        Some(cap) => Tracer::with_flight_capacity(opts.level, cap),
        None => Tracer::new(opts.level),
    });
    sys.attach_telemetry(std::rc::Rc::clone(&tracer));
    if let Some(plan) = &opts.fault_plan {
        sys.attach_faults(plan)?;
    }
    let profiler = opts.profile_sample_every.map(shared_profiler);
    if let Some(p) = &profiler {
        sys.attach_profiler(std::rc::Rc::clone(p));
    }
    let report = sys.run()?;
    let mut metrics = MetricsRegistry::new();
    sys.harvest_metrics(&mut metrics);
    if let Some(p) = &profiler {
        p.borrow().export_metrics(&mut metrics);
    }
    Ok(TracedRun {
        report,
        tracer,
        metrics,
        profiler,
    })
}

/// The three Table VI configurations at a given core clock.
pub fn configurations(core_clock_hz: f64) -> Vec<AcceleratorConfig> {
    vec![
        AcceleratorConfig::cpu_iso_bandwidth().with_core_clock(core_clock_hz),
        AcceleratorConfig::gpu_iso_bandwidth().with_core_clock(core_clock_hz),
        AcceleratorConfig::gpu_iso_flops().with_core_clock(core_clock_hz),
    ]
}

/// The §VI clock sweep.
pub const CLOCK_SWEEP: [f64; 3] = [0.6e9, 1.2e9, 2.4e9];

/// Speedup of a simulated latency over a measured baseline.
pub fn speedup(baseline: &MeasuredLatency, report: &SimReport, vs_gpu: bool) -> f64 {
    let base = if vs_gpu {
        baseline.gpu_s
    } else {
        baseline.cpu_s
    };
    base / report.latency_s()
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cases_build() {
        for (model, input) in gnna_models::BENCHMARK_PAIRS {
            let case = build_case(model, input, Scale::Smoke).unwrap();
            assert!(case.macs > 0, "{model} {input}");
            assert!(!case.program.layers.is_empty());
        }
    }

    #[test]
    fn smoke_gcn_simulates() {
        let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
        let cfg = AcceleratorConfig::cpu_iso_bandwidth();
        let r = simulate(&case, &cfg).unwrap();
        assert!(r.total_cycles > 0);
        assert!(r.dram_bytes > 0);
    }

    #[test]
    fn configurations_are_table_vi() {
        let cfgs = configurations(2.4e9);
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[0].num_tiles(), 1);
        assert_eq!(cfgs[1].num_tiles(), 8);
        assert_eq!(cfgs[2].num_tiles(), 16);
    }
}
