//! `gnna-report` — turn `gnna-sim --metrics-out`/`--trace-out` dumps into
//! a bottleneck report.
//!
//! ```console
//! $ gnna-sim --model gcn --smoke --metrics-out m.json --trace-out t.json
//! $ gnna-report --metrics m.json --trace t.json
//! $ gnna-report --metrics m.json --format csv --out report.csv
//! ```
//!
//! The markdown report carries per-module utilisation, a per-tile
//! stall-cause breakdown, the hottest mesh links as a heat-map, and
//! packet-latency quantiles (paper Fig. 9/10 style).

use gnna_bench::report::{
    parse_campaign_jsonl, parse_trace_json, BottleneckReport, CampaignReport, DiffReport,
    MetricsSnapshot,
};
use std::process::ExitCode;

struct Args {
    metrics: Option<String>,
    diff: Option<(String, String)>,
    trace: Option<String>,
    campaign: Option<String>,
    out: Option<String>,
    format: Format,
    top_k: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Markdown,
    Csv,
    Auto,
}

const USAGE: &str = "\
usage: gnna-report --metrics FILE [options]
       gnna-report --diff A B [options]
       gnna-report --campaign FILE [options]
  --metrics FILE    metrics dump from `gnna-sim --metrics-out`
                    (.json or .csv, auto-detected)
  --diff A B        differential mode: compare two metrics dumps and
                    render cycle/stall/link/energy deltas (B - A)
  --trace FILE      optional Chrome trace from `gnna-sim --trace-out`;
                    adds a trace-inventory section (single-run mode only)
  --campaign FILE   JSONL sweep from `gnna-campaign`; renders the
                    `## Fault campaigns` section (accuracy vs rate,
                    degraded-mode slowdown, SDC rate per site), either
                    standalone or appended to a --metrics report
  --out FILE        write the report here instead of stdout
  --format md|csv   output format (default: md, or by --out extension)
  --top-k N         rows in the hottest-links/spans/deltas tables
                    (default 8)
  --version         print the workspace version
  --help            this message";

fn parse_args() -> Result<Args, String> {
    let mut metrics = None;
    let mut diff = None;
    let mut trace = None;
    let mut campaign = None;
    let mut out = None;
    let mut format = Format::Auto;
    let mut top_k = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--metrics" => metrics = Some(value("--metrics")?),
            "--diff" => diff = Some((value("--diff")?, value("--diff")?)),
            "--trace" => trace = Some(value("--trace")?),
            "--campaign" => campaign = Some(value("--campaign")?),
            "--out" => out = Some(value("--out")?),
            "--format" => {
                format = match value("--format")?.as_str() {
                    "md" | "markdown" => Format::Markdown,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format {other} (md|csv)")),
                }
            }
            "--top-k" => {
                top_k = value("--top-k")?
                    .parse()
                    .map_err(|e| format!("bad --top-k: {e}"))?
            }
            "--version" | "-V" => {
                println!("gnna-report {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if metrics.is_none() && diff.is_none() && campaign.is_none() {
        return Err("one of --metrics, --diff, or --campaign is required".to_string());
    }
    if metrics.is_some() && diff.is_some() {
        return Err("--metrics and --diff are mutually exclusive".to_string());
    }
    if campaign.is_some() && diff.is_some() {
        return Err("--campaign and --diff are mutually exclusive".to_string());
    }
    Ok(Args {
        metrics,
        diff,
        trace,
        campaign,
        out,
        format,
        top_k,
    })
}

/// Read and parse one metrics dump, or exit with a readable error.
fn load_snapshot(path: &str) -> Result<MetricsSnapshot, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read metrics {path}: {e}"))?;
    MetricsSnapshot::parse(&text).map_err(|e| format!("cannot parse metrics {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let format = match args.format {
        Format::Auto => match &args.out {
            Some(p) if p.ends_with(".csv") => Format::Csv,
            _ => Format::Markdown,
        },
        f => f,
    };

    // Differential mode: compare two dumps, render deltas, done.
    if let Some((path_a, path_b)) = &args.diff {
        let (a, b) = match (load_snapshot(path_a), load_snapshot(path_b)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let diff = DiffReport::build(&a, &b, path_a, path_b);
        let body = match format {
            Format::Csv => diff.to_csv(),
            _ => diff.to_markdown(args.top_k),
        };
        return match &args.out {
            None => {
                print!("{body}");
                ExitCode::SUCCESS
            }
            Some(path) => {
                if let Err(e) = std::fs::write(path, &body) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "diff report: {path} ({} system rows, {} stall causes, \
                     {} links, {} energy rows{})",
                    diff.system.len(),
                    diff.stalls.len(),
                    diff.links.len(),
                    diff.energy.len(),
                    if diff.is_zero() { ", identical" } else { "" }
                );
                ExitCode::SUCCESS
            }
        };
    }

    // Campaign section: parsed up front so bad files fail before any
    // output is produced; rendered standalone or appended to --metrics.
    // An empty or whitespace-only file parses to zero records — that is
    // a truncated or never-started sweep, not a report, so it fails
    // here instead of rendering an empty section.
    let campaign = match &args.campaign {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read campaign {path}: {e}"))
            .and_then(|t| {
                parse_campaign_jsonl(&t).map_err(|e| format!("cannot parse campaign {path}: {e}"))
            })
            .and_then(|records| {
                if records.is_empty() {
                    Err(format!(
                        "campaign {path} holds no records (empty or truncated sweep); \
                         re-run gnna-campaign or pass its --out file"
                    ))
                } else {
                    Ok(records)
                }
            }) {
            Ok(records) => Some(CampaignReport::build(records)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // Campaign-only mode: the section is the whole report.
    let Some(metrics_path) = args.metrics.as_deref() else {
        let campaign = campaign.expect("checked in parse_args");
        let body = match format {
            Format::Csv => campaign.to_csv(),
            _ => campaign.to_markdown(),
        };
        return match &args.out {
            None => {
                print!("{body}");
                ExitCode::SUCCESS
            }
            Some(path) => {
                if let Err(e) = std::fs::write(path, &body) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "campaign report: {path} ({} cells, {} accuracy rows)",
                    campaign.records.len(),
                    campaign.accuracy.len()
                );
                ExitCode::SUCCESS
            }
        };
    };
    let snap = match load_snapshot(metrics_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match &args.trace {
        None => None,
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(t) => match parse_trace_json(&t) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("error: cannot parse trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let report = BottleneckReport::build(&snap, trace);
    let mut body = match format {
        Format::Csv => report.to_csv(),
        _ => report.to_markdown(args.top_k),
    };
    if let Some(campaign) = &campaign {
        body.push('\n');
        body.push_str(&match format {
            Format::Csv => campaign.to_csv(),
            _ => campaign.to_markdown(),
        });
    }
    match &args.out {
        None => print!("{body}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "report: {path} ({} tiles, {} links, {} stall causes)",
                report.tiles.len(),
                report.links.len(),
                report.stall_totals.len()
            );
        }
    }
    ExitCode::SUCCESS
}
