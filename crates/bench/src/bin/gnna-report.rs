//! `gnna-report` — turn `gnna-sim --metrics-out`/`--trace-out` dumps into
//! a bottleneck report.
//!
//! ```console
//! $ gnna-sim --model gcn --smoke --metrics-out m.json --trace-out t.json
//! $ gnna-report --metrics m.json --trace t.json
//! $ gnna-report --metrics m.json --format csv --out report.csv
//! ```
//!
//! The markdown report carries per-module utilisation, a per-tile
//! stall-cause breakdown, the hottest mesh links as a heat-map, and
//! packet-latency quantiles (paper Fig. 9/10 style).

use gnna_bench::report::{parse_trace_json, BottleneckReport, MetricsSnapshot};
use std::process::ExitCode;

struct Args {
    metrics: String,
    trace: Option<String>,
    out: Option<String>,
    format: Format,
    top_k: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Markdown,
    Csv,
    Auto,
}

const USAGE: &str = "\
usage: gnna-report --metrics FILE [options]
  --metrics FILE    metrics dump from `gnna-sim --metrics-out`
                    (.json or .csv, auto-detected)
  --trace FILE      optional Chrome trace from `gnna-sim --trace-out`;
                    adds a trace-inventory section
  --out FILE        write the report here instead of stdout
  --format md|csv   output format (default: md, or by --out extension)
  --top-k N         rows in the hottest-links/spans tables (default 8)
  --help            this message";

fn parse_args() -> Result<Args, String> {
    let mut metrics = None;
    let mut trace = None;
    let mut out = None;
    let mut format = Format::Auto;
    let mut top_k = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--metrics" => metrics = Some(value("--metrics")?),
            "--trace" => trace = Some(value("--trace")?),
            "--out" => out = Some(value("--out")?),
            "--format" => {
                format = match value("--format")?.as_str() {
                    "md" | "markdown" => Format::Markdown,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format {other} (md|csv)")),
                }
            }
            "--top-k" => {
                top_k = value("--top-k")?
                    .parse()
                    .map_err(|e| format!("bad --top-k: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    let metrics = metrics.ok_or("--metrics is required")?;
    Ok(Args {
        metrics,
        trace,
        out,
        format,
        top_k,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let metrics_text = match std::fs::read_to_string(&args.metrics) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read metrics {}: {e}", args.metrics);
            return ExitCode::FAILURE;
        }
    };
    let snap = match MetricsSnapshot::parse(&metrics_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot parse metrics {}: {e}", args.metrics);
            return ExitCode::FAILURE;
        }
    };
    let trace = match &args.trace {
        None => None,
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(t) => match parse_trace_json(&t) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("error: cannot parse trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let report = BottleneckReport::build(&snap, trace);
    let format = match args.format {
        Format::Auto => match &args.out {
            Some(p) if p.ends_with(".csv") => Format::Csv,
            _ => Format::Markdown,
        },
        f => f,
    };
    let body = match format {
        Format::Csv => report.to_csv(),
        _ => report.to_markdown(args.top_k),
    };
    match &args.out {
        None => print!("{body}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "report: {path} ({} tiles, {} links, {} stall causes)",
                report.tiles.len(),
                report.links.len(),
                report.stall_totals.len()
            );
        }
    }
    ExitCode::SUCCESS
}
