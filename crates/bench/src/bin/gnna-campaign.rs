//! `gnna-campaign` — parallel fault-injection campaign runner.
//!
//! Sweeps a `rate × seed × benchmark × mode` grid and streams one
//! JSON-lines record per cell to `--out`. Output bytes are identical
//! for any `--threads` value, and an interrupted campaign resumes from
//! the partial file without recomputing finished cells:
//!
//! ```console
//! $ gnna-campaign --smoke --rates 0,0.001,0.01 --seeds 1,2 --threads 4
//! $ gnna-report --campaign campaign.jsonl
//! ```

use gnna_bench::campaign::{self, CampaignSpec, Mode, RateUnit};
use gnna_bench::Scale;
use gnna_core::config::AcceleratorConfig;
use gnna_faults::{CrcDomain, EccDomain};
use gnna_models::ModelKind;
use std::io::Write as _;
use std::process::ExitCode;

struct Args {
    spec: CampaignSpec,
    threads: usize,
    out: String,
    fresh: bool,
}

const USAGE: &str = "\
usage: gnna-campaign [options]
  --benchmarks M:I[,M:I...]      model:input pairs, e.g. gcn:cora,mpnn:qm9
                                 (default gcn:cora)
  --rates R[,R...]               fault rates to sweep
                                 (default 0,0.0001,0.001,0.01)
  --rate-unit event|fit          unit of --rates: per-event probability
                                 (default) or physical FIT / upsets per
                                 Gbit-hour, converted per-event at the
                                 2.4 GHz master clock
  --acceleration F               multiply physically calibrated rates by
                                 F to observe faults in bounded sim time
                                 (default 1; --rate-unit fit only)
  --seeds S[,S...]               fault-plan seeds (default 1,2)
  --modes M[,M...]               protected|passthrough|degraded|rollback
                                 (default the first three; rollback is
                                 opt-in)
  --domains E:C[,E:C...]         selective protection domains to sweep
                                 as ECC:CRC pairs, ECC in
                                 both|weights|acts and CRC in
                                 all|data|ctrl (default both:all)
  --config cpu-iso-bw|gpu-iso-bw|gpu-iso-flops
                                 Table VI configuration (default gpu-iso-bw)
  --smoke                        scaled-down datasets for a fast sweep
  --double-bit-fraction F        fraction of DRAM faults that are
                                 double-bit (default 0.25)
  --threads N                    worker threads (default 1; output bytes
                                 are identical for every N)
  --out PATH                     JSONL output (default campaign.jsonl);
                                 an existing partial file is resumed
  --fresh                        recompute everything, ignoring any
                                 existing output file
  --version                      print the workspace version
  --help                         this message";

fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s {
        "gcn" => Ok(ModelKind::Gcn),
        "gat" => Ok(ModelKind::Gat),
        "mpnn" => Ok(ModelKind::Mpnn),
        "pgnn" => Ok(ModelKind::Pgnn),
        other => Err(format!("unknown model {other}")),
    }
}

fn parse_input(s: &str) -> Result<&'static str, String> {
    match s {
        "cora" => Ok("Cora"),
        "citeseer" => Ok("Citeseer"),
        "pubmed" => Ok("Pubmed"),
        "qm9_1000" | "qm9" => Ok("QM9_1000"),
        "dblp_1" | "dblp" => Ok("DBLP_1"),
        other => Err(format!("unknown input {other}")),
    }
}

fn default_input(m: ModelKind) -> &'static str {
    match m {
        ModelKind::Gcn | ModelKind::Gat => "Cora",
        ModelKind::Mpnn => "QM9_1000",
        ModelKind::Pgnn => "DBLP_1",
    }
}

fn parse_args() -> Result<Args, String> {
    let mut spec = CampaignSpec::new(AcceleratorConfig::gpu_iso_bandwidth(), Scale::Paper);
    let mut threads = 1usize;
    let mut out = "campaign.jsonl".to_string();
    let mut fresh = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--benchmarks" => {
                let mut pairs = Vec::new();
                for item in value("--benchmarks")?.to_ascii_lowercase().split(',') {
                    let (m, i) = match item.split_once(':') {
                        Some((m, i)) => (parse_model(m)?, parse_input(i)?),
                        None => {
                            let m = parse_model(item)?;
                            (m, default_input(m))
                        }
                    };
                    pairs.push((m, i));
                }
                if pairs.is_empty() {
                    return Err("--benchmarks needs at least one pair".into());
                }
                spec.benchmarks = pairs;
            }
            "--rates" => {
                let mut rates = Vec::new();
                for r in value("--rates")?.split(',') {
                    let r: f64 = r.parse().map_err(|e| format!("bad rate {r}: {e}"))?;
                    if !r.is_finite() || r < 0.0 {
                        return Err(format!("rate {r} must be finite and non-negative"));
                    }
                    rates.push(r);
                }
                spec.rates = rates;
            }
            "--rate-unit" => {
                let s = value("--rate-unit")?.to_ascii_lowercase();
                spec.rate_unit = RateUnit::parse(&s)
                    .ok_or_else(|| format!("unknown rate unit {s} (event|fit)"))?;
            }
            "--acceleration" => {
                let f: f64 = value("--acceleration")?
                    .parse()
                    .map_err(|e| format!("bad acceleration: {e}"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err("--acceleration must be finite and positive".into());
                }
                spec.acceleration = f;
            }
            "--domains" => {
                let mut domains = Vec::new();
                for item in value("--domains")?.to_ascii_lowercase().split(',') {
                    let (e, c) = item.split_once(':').unwrap_or((item, "all"));
                    let ecc = EccDomain::parse(e)
                        .ok_or_else(|| format!("unknown ECC domain {e} (both|weights|acts)"))?;
                    let crc = CrcDomain::parse(c)
                        .ok_or_else(|| format!("unknown CRC domain {c} (all|data|ctrl)"))?;
                    domains.push((ecc, crc));
                }
                if domains.is_empty() {
                    return Err("--domains needs at least one pair".into());
                }
                spec.domains = domains;
            }
            "--seeds" => {
                let mut seeds = Vec::new();
                for s in value("--seeds")?.split(',') {
                    seeds.push(s.parse().map_err(|e| format!("bad seed {s}: {e}"))?);
                }
                spec.seeds = seeds;
            }
            "--modes" => {
                let mut modes = Vec::new();
                for m in value("--modes")?.to_ascii_lowercase().split(',') {
                    modes.push(Mode::parse(m).ok_or_else(|| {
                        format!("unknown mode {m} (protected|passthrough|degraded|rollback)")
                    })?);
                }
                spec.modes = modes;
            }
            "--config" => {
                spec.config = match value("--config")?.to_ascii_lowercase().as_str() {
                    "cpu-iso-bw" => AcceleratorConfig::cpu_iso_bandwidth(),
                    "gpu-iso-bw" => AcceleratorConfig::gpu_iso_bandwidth(),
                    "gpu-iso-flops" => AcceleratorConfig::gpu_iso_flops(),
                    other => return Err(format!("unknown config {other}")),
                }
            }
            "--smoke" => spec.scale = Scale::Smoke,
            "--double-bit-fraction" => {
                let f: f64 = value("--double-bit-fraction")?
                    .parse()
                    .map_err(|e| format!("bad fraction: {e}"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--double-bit-fraction must be in [0, 1]".into());
                }
                spec.double_bit_fraction = f;
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                if threads == 0 {
                    threads = 1;
                }
            }
            "--out" => out = value("--out")?,
            "--fresh" => fresh = true,
            "--version" | "-V" => {
                println!("gnna-campaign {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    // Per-event probabilities live in [0, 1]; physical FIT / upset
    // rates are unbounded, so the check waits until the unit is known.
    if spec.rate_unit == RateUnit::PerEvent {
        if let Some(r) = spec.rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
            return Err(format!("rate {r} outside [0, 1] (use --rate-unit fit for physical rates)"));
        }
    }
    Ok(Args {
        spec,
        threads,
        out,
        fresh,
    })
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cells = args.spec.cells();
    // Resume: keep the complete-line prefix of an existing output file
    // and recompute only the missing tail.
    let mut start_cell = 0usize;
    if !args.fresh {
        if let Ok(existing) = std::fs::read_to_string(&args.out) {
            let (lines, prefix) = campaign::resume_point(&existing);
            campaign::validate_prefix(&existing[..prefix], &cells)?;
            if prefix != existing.len() {
                eprintln!(
                    "gnna-campaign: dropping a partial trailing line in {}",
                    args.out
                );
            }
            std::fs::write(&args.out, &existing[..prefix])?;
            start_cell = lines;
        }
    } else {
        let _ = std::fs::remove_file(&args.out);
    }
    if start_cell >= cells.len() {
        eprintln!(
            "gnna-campaign: {} already holds all {} cells",
            args.out,
            cells.len()
        );
        return Ok(());
    }
    if start_cell > 0 {
        eprintln!(
            "gnna-campaign: resuming {} at cell {start_cell}/{}",
            args.out,
            cells.len()
        );
    }
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&args.out)?;
    let mut writer = std::io::BufWriter::new(file);
    let mut written = 0usize;
    let ran = campaign::run(&args.spec, args.threads, start_cell, |line| {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        // Flush per record so an interrupted campaign leaves a clean,
        // resumable prefix on disk.
        writer.flush()?;
        written += 1;
        Ok(())
    })?;
    eprintln!(
        "gnna-campaign: wrote {written} of {ran} pending cells ({} total) to {}",
        cells.len(),
        args.out
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
