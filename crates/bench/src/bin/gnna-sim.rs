//! `gnna-sim` — simulate one benchmark/configuration pair from the
//! command line.
//!
//! ```console
//! $ gnna-sim --model gcn --input cora --config gpu-iso-bw --clock 2.4
//! $ gnna-sim --model mpnn --input qm9_1000 --smoke --energy --layers
//! ```
//!
//! Prints the simulation report, the Fig-8-style speedups against the
//! measured Table VII baselines, and optionally a per-layer timing
//! breakdown and an energy estimate.

use gnna_bench::{build_case, simulate, simulate_traced_opts, Scale, TraceOptions};
use gnna_core::config::AcceleratorConfig;
use gnna_core::energy::EnergyModel;
use gnna_faults::{CrcDomain, EccDomain, FaultPlan, PhysicalRates, RecoveryMode};
use gnna_models::ModelKind;
use gnna_telemetry::{Metric, MetricsRegistry, TraceLevel};
use std::process::ExitCode;

struct Args {
    model: ModelKind,
    input: &'static str,
    config: AcceleratorConfig,
    clock_ghz: f64,
    threads: Option<usize>,
    flit_bytes: Option<usize>,
    scale: Scale,
    show_layers: bool,
    show_energy: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    trace_level: Option<TraceLevel>,
    flight_capacity: Option<usize>,
    fault_seed: Option<u64>,
    fault_rate: Option<f64>,
    fault_fit: Option<f64>,
    fault_acceleration: f64,
    fault_recovery: Option<RecoveryMode>,
    ecc_domain: Option<EccDomain>,
    crc_domain: Option<CrcDomain>,
    checkpoint_interval: Option<u64>,
    rollback_budget: Option<u64>,
    mem_retry_budget: Option<u32>,
    stall_window: Option<u64>,
    profile_out: Option<String>,
    profile_json: Option<String>,
    profile_sample_every: Option<u64>,
}

const USAGE: &str = "\
usage: gnna-sim [options]
  --model  gcn|gat|mpnn|pgnn     benchmark model (default gcn)
  --input  cora|citeseer|pubmed|qm9_1000|dblp_1
                                 input dataset (default: the model's
                                 Table VII pairing)
  --config cpu-iso-bw|gpu-iso-bw|gpu-iso-flops
                                 Table VI configuration (default cpu-iso-bw)
  --clock  GHZ                   core clock in GHz: 0.6, 1.2 or 2.4
                                 (default 2.4)
  --threads N                    GPE software threads (default 16)
  --flit-bytes N                 NoC flit / crossbar width in bytes
                                 (default 64; energy A/B ablation knob)
  --smoke                        scaled-down dataset for a fast run
  --layers                       print the per-layer timing breakdown
  --energy                       print the energy estimate
  --trace-out PATH               write a Chrome/Perfetto trace JSON
                                 (load at ui.perfetto.dev)
  --metrics-out PATH             write module counters (.json or .csv)
  --trace-level off|phase|event  trace detail (default: event when
                                 --trace-out is given, off otherwise)
  --flight-capacity N            stall flight-recorder ring size
                                 (default 256; 0 disables the ring)
  --fault-rate P                 per-event transient-fault probability at
                                 every protected site (0 disables; runs
                                 with 0 are bit-identical to no flag)
  --fault-seed N                 fault-injection RNG seed (default 1;
                                 identical seeds replay identical faults)
  --fault-fit F                  physically calibrated fault rate: F is
                                 read as both a link FIT and a DRAM
                                 upsets/Gbit-hour rate and converted to
                                 per-event probabilities at the 2.4 GHz
                                 master clock (alternative to
                                 --fault-rate)
  --fault-acceleration F         multiply --fault-fit rates by F so
                                 faults are observable in bounded sim
                                 time (default 1)
  --fault-recovery retry|passthrough|rollback
                                 what to do when a protection budget is
                                 exhausted (default retry; rollback
                                 snapshots layer-boundary checkpoints
                                 and replays)
  --ecc-domain both|weights|acts DRAM region SECDED protects; faults
                                 outside it are silent corruption
                                 (default both)
  --crc-domain all|data|ctrl     flit traffic link CRC protects; faults
                                 outside it are silent corruption
                                 (default all)
  --checkpoint-interval N        layers between checkpoints under
                                 rollback recovery (default 1)
  --rollback-budget N            rollbacks allowed before the fault
                                 degrades to an error (default 8)
  --mem-retry-budget N           DRAM double-bit re-reads allowed per
                                 error (default unlimited)
  --stall-window N               master cycles without progress before
                                 the watchdog reports a stall
                                 (default 2000000)
  --profile-out PATH             write a collapsed-stack host profile
                                 (flamegraph.pl / inferno input)
  --profile-json PATH            write the host.profile.* metrics as JSON
                                 (the BENCH_profile_baseline.json format)
  --profile-sample-every N       time one cycle in N inside the cycle
                                 loop (default 64; implies profiling)
  --version                      print the workspace version
  --help                         this message";

fn parse_args() -> Result<Args, String> {
    let mut model = ModelKind::Gcn;
    let mut input: Option<&'static str> = None;
    let mut config = AcceleratorConfig::cpu_iso_bandwidth();
    let mut clock_ghz = 2.4;
    let mut threads = None;
    let mut flit_bytes = None;
    let mut scale = Scale::Paper;
    let mut show_layers = false;
    let mut show_energy = false;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut trace_level = None;
    let mut flight_capacity = None;
    let mut fault_seed = None;
    let mut fault_rate = None;
    let mut fault_fit = None;
    let mut fault_acceleration = 1.0f64;
    let mut fault_recovery = None;
    let mut ecc_domain = None;
    let mut crc_domain = None;
    let mut checkpoint_interval = None;
    let mut rollback_budget = None;
    let mut mem_retry_budget = None;
    let mut stall_window = None;
    let mut profile_out = None;
    let mut profile_json = None;
    let mut profile_sample_every = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--model" => {
                model = match value("--model")?.to_ascii_lowercase().as_str() {
                    "gcn" => ModelKind::Gcn,
                    "gat" => ModelKind::Gat,
                    "mpnn" => ModelKind::Mpnn,
                    "pgnn" => ModelKind::Pgnn,
                    other => return Err(format!("unknown model {other}")),
                }
            }
            "--input" => {
                input = Some(match value("--input")?.to_ascii_lowercase().as_str() {
                    "cora" => "Cora",
                    "citeseer" => "Citeseer",
                    "pubmed" => "Pubmed",
                    "qm9_1000" | "qm9" => "QM9_1000",
                    "dblp_1" | "dblp" => "DBLP_1",
                    other => return Err(format!("unknown input {other}")),
                })
            }
            "--config" => {
                config = match value("--config")?.to_ascii_lowercase().as_str() {
                    "cpu-iso-bw" => AcceleratorConfig::cpu_iso_bandwidth(),
                    "gpu-iso-bw" => AcceleratorConfig::gpu_iso_bandwidth(),
                    "gpu-iso-flops" => AcceleratorConfig::gpu_iso_flops(),
                    other => return Err(format!("unknown config {other}")),
                }
            }
            "--clock" => {
                clock_ghz = value("--clock")?
                    .parse()
                    .map_err(|e| format!("bad clock: {e}"))?
            }
            "--threads" => {
                threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("bad thread count: {e}"))?,
                )
            }
            "--flit-bytes" => {
                let n: usize = value("--flit-bytes")?
                    .parse()
                    .map_err(|e| format!("bad flit width: {e}"))?;
                if n == 0 {
                    return Err("--flit-bytes must be positive".to_string());
                }
                flit_bytes = Some(n);
            }
            "--smoke" => scale = Scale::Smoke,
            "--layers" => show_layers = true,
            "--energy" => show_energy = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--trace-level" => {
                let s = value("--trace-level")?;
                trace_level = Some(
                    TraceLevel::parse(&s)
                        .ok_or_else(|| format!("unknown trace level {s} (off|phase|event)"))?,
                );
            }
            "--flight-capacity" => {
                flight_capacity = Some(
                    value("--flight-capacity")?
                        .parse()
                        .map_err(|e| format!("bad flight capacity: {e}"))?,
                )
            }
            "--fault-rate" => {
                let r: f64 = value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("bad fault rate: {e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err("--fault-rate must be in [0, 1]".to_string());
                }
                fault_rate = Some(r);
            }
            "--fault-seed" => {
                fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("bad fault seed: {e}"))?,
                )
            }
            "--fault-fit" => {
                let f: f64 = value("--fault-fit")?
                    .parse()
                    .map_err(|e| format!("bad FIT rate: {e}"))?;
                if !f.is_finite() || f < 0.0 {
                    return Err("--fault-fit must be finite and non-negative".to_string());
                }
                fault_fit = Some(f);
            }
            "--fault-acceleration" => {
                let f: f64 = value("--fault-acceleration")?
                    .parse()
                    .map_err(|e| format!("bad acceleration: {e}"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err("--fault-acceleration must be finite and positive".to_string());
                }
                fault_acceleration = f;
            }
            "--fault-recovery" => {
                let s = value("--fault-recovery")?.to_ascii_lowercase();
                fault_recovery = Some(RecoveryMode::parse(&s).ok_or_else(|| {
                    format!("unknown recovery mode {s} (retry|passthrough|rollback)")
                })?);
            }
            "--ecc-domain" => {
                let s = value("--ecc-domain")?.to_ascii_lowercase();
                ecc_domain = Some(
                    EccDomain::parse(&s)
                        .ok_or_else(|| format!("unknown ECC domain {s} (both|weights|acts)"))?,
                );
            }
            "--crc-domain" => {
                let s = value("--crc-domain")?.to_ascii_lowercase();
                crc_domain = Some(
                    CrcDomain::parse(&s)
                        .ok_or_else(|| format!("unknown CRC domain {s} (all|data|ctrl)"))?,
                );
            }
            "--checkpoint-interval" => {
                let n: u64 = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("bad checkpoint interval: {e}"))?;
                if n == 0 {
                    return Err("--checkpoint-interval must be positive".to_string());
                }
                checkpoint_interval = Some(n);
            }
            "--rollback-budget" => {
                rollback_budget = Some(
                    value("--rollback-budget")?
                        .parse()
                        .map_err(|e| format!("bad rollback budget: {e}"))?,
                )
            }
            "--mem-retry-budget" => {
                mem_retry_budget = Some(
                    value("--mem-retry-budget")?
                        .parse()
                        .map_err(|e| format!("bad re-read budget: {e}"))?,
                )
            }
            "--stall-window" => {
                let w: u64 = value("--stall-window")?
                    .parse()
                    .map_err(|e| format!("bad stall window: {e}"))?;
                if w == 0 {
                    return Err("--stall-window must be positive".to_string());
                }
                stall_window = Some(w);
            }
            "--profile-out" => profile_out = Some(value("--profile-out")?),
            "--profile-json" => profile_json = Some(value("--profile-json")?),
            "--profile-sample-every" => {
                let n: u64 = value("--profile-sample-every")?
                    .parse()
                    .map_err(|e| format!("bad sampling period: {e}"))?;
                if n == 0 {
                    return Err("--profile-sample-every must be positive".to_string());
                }
                profile_sample_every = Some(n);
            }
            "--version" | "-V" => {
                println!("gnna-sim {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    let input = input.unwrap_or(match model {
        ModelKind::Gcn | ModelKind::Gat => "Cora",
        ModelKind::Mpnn => "QM9_1000",
        ModelKind::Pgnn => "DBLP_1",
    });
    Ok(Args {
        model,
        input,
        config,
        clock_ghz,
        threads,
        flit_bytes,
        scale,
        show_layers,
        show_energy,
        trace_out,
        metrics_out,
        trace_level,
        flight_capacity,
        fault_seed,
        fault_rate,
        fault_fit,
        fault_acceleration,
        fault_recovery,
        ecc_domain,
        crc_domain,
        checkpoint_interval,
        rollback_budget,
        mem_retry_budget,
        stall_window,
        profile_out,
        profile_json,
        profile_sample_every,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let case = match build_case(args.model, args.input, args.scale) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot build {} on {}: {e}", args.model, args.input);
            return ExitCode::FAILURE;
        }
    };
    let mut config = args.config.with_core_clock(args.clock_ghz * 1e9);
    if let Some(t) = args.threads {
        config.gpe_threads = t;
    }
    if let Some(n) = args.flit_bytes {
        config = config.with_flit_bytes(n);
    }
    if let Some(w) = args.stall_window {
        config = config.with_stall_window(w);
    }
    // A fault plan is built only when a nonzero rate is requested, so a
    // plain run (or `--fault-rate 0`) stays bit-identical to the
    // pre-fault-subsystem simulator. `--fault-fit` is the physically
    // calibrated alternative; the protection knobs below only bite when
    // one of the two rates built a plan.
    let seed = args.fault_seed.unwrap_or(1);
    let mut fault_plan = match (
        args.fault_rate.filter(|&r| r > 0.0),
        args.fault_fit.filter(|&f| f > 0.0),
    ) {
        (Some(r), _) => Some(FaultPlan::new(seed).with_rate(r)),
        (None, Some(fit)) => Some(FaultPlan::from_physical(
            seed,
            &PhysicalRates {
                dram_upsets_per_gbit_hour: fit,
                link_fit: fit,
                acceleration: args.fault_acceleration,
                ..PhysicalRates::default()
            },
        )),
        (None, None) => None,
    };
    if let Some(mut plan) = fault_plan.take() {
        if let Some(mode) = args.fault_recovery {
            plan = plan.with_recovery(mode);
        }
        if let Some(d) = args.ecc_domain {
            plan = plan.with_ecc_domain(d);
        }
        if let Some(d) = args.crc_domain {
            plan = plan.with_crc_domain(d);
        }
        if let Some(n) = args.checkpoint_interval {
            plan = plan.with_checkpoint_interval(n);
        }
        if let Some(n) = args.rollback_budget {
            plan = plan.with_rollback_budget(n);
        }
        if let Some(n) = args.mem_retry_budget {
            plan = plan.with_mem_retry_budget(n);
        }
        println!(
            "fault injection: mem rate {} noc rate {} seed {} recovery {} \
             (SECDED mem [{}], CRC+retransmit noc [{}], DNA bubbles)",
            plan.mem_rate, plan.noc_rate, plan.seed, plan.recovery, plan.ecc_domain, plan.crc_domain
        );
        fault_plan = Some(plan);
    }
    println!(
        "{} on {} ({} vertices, {} MMACs), {} @ {:.1} GHz, {} GPE threads",
        args.model,
        args.input,
        case.dataset.total_nodes(),
        case.macs / 1_000_000,
        config.name,
        args.clock_ghz,
        config.gpe_threads
    );
    // Tracing is wanted when an output path is given or a level above
    // `off` is requested explicitly; `--trace-level off` forces the
    // untraced path (bit-identical to running without any trace flags).
    let level = args.trace_level.unwrap_or({
        if args.trace_out.is_some() || args.metrics_out.is_some() {
            TraceLevel::Event
        } else {
            TraceLevel::Off
        }
    });
    // Host profiling is wanted when any --profile-* flag is present.
    let profile_sample_every = if args.profile_out.is_some() || args.profile_json.is_some() {
        Some(
            args.profile_sample_every
                .unwrap_or(gnna_telemetry::profile::DEFAULT_SAMPLE_EVERY),
        )
    } else {
        args.profile_sample_every
    };
    let wall = std::time::Instant::now();
    let report = if level == TraceLevel::Off
        && fault_plan.is_none()
        && profile_sample_every.is_none()
    {
        match simulate(&case, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let opts = TraceOptions {
            level,
            flight_capacity: args.flight_capacity,
            fault_plan,
            profile_sample_every,
        };
        let run = match simulate_traced_opts(&case, &config, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(path) = &args.trace_out {
            let json = run.tracer.borrow().to_chrome_json_string();
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: cannot write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "trace: {} ({} events, {} tracks) — load at ui.perfetto.dev",
                path,
                run.tracer.borrow().event_count(),
                run.tracer.borrow().track_count()
            );
        }
        if let Some(path) = &args.metrics_out {
            let body = if path.ends_with(".csv") {
                run.metrics.to_csv_string()
            } else {
                run.metrics.to_json_string()
            };
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("error: cannot write metrics {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics: {} ({} series)", path, run.metrics.len());
        }
        if let Some(profiler) = &run.profiler {
            let prof = profiler.borrow();
            if let Some(path) = &args.profile_out {
                if let Err(e) = std::fs::write(path, prof.collapsed()) {
                    eprintln!("error: cannot write profile {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("host profile: {path} (collapsed stacks — feed to flamegraph tooling)");
            }
            if let Some(path) = &args.profile_json {
                let mut sub = MetricsRegistry::new();
                for (name, m) in run.metrics.iter() {
                    if name.starts_with("host.profile.") {
                        match m {
                            Metric::Counter(v) => sub.counter_set(name, *v),
                            Metric::Gauge(v) => sub.gauge_set(name, *v),
                            Metric::Histogram(h) => sub.histogram_set(name, *h),
                        }
                    }
                }
                if let Err(e) = std::fs::write(path, sub.to_json_string()) {
                    eprintln!("error: cannot write profile metrics {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("host profile metrics: {path} ({} series)", sub.len());
            }
            println!(
                "host profile: {:.0} cycles/sec (sampled 1 in {})",
                prof.cycles_per_sec(),
                prof.sample_every()
            );
        }
        run.report
    };
    println!("{report}");
    println!("(simulated in {:.1?})", wall.elapsed());
    if args.scale == Scale::Paper {
        if let Some(m) = gnna_baselines::table7::measured(args.model, args.input) {
            println!(
                "speedup vs measured baselines: {:.2}x CPU, {:.2}x GPU",
                m.cpu_s / report.latency_s(),
                m.gpu_s / report.latency_s()
            );
        }
    }
    if args.show_layers {
        println!("\nper-layer timing:");
        for l in &report.layers {
            println!(
                "  {:<18} {:>12} cycles ({:>8} config)  {:.3} ms",
                l.name,
                l.cycles,
                l.config_cycles,
                l.cycles as f64 / report.noc_clock_hz * 1e3
            );
        }
    }
    if args.show_energy {
        let e = EnergyModel::default().estimate(&report);
        println!("\nenergy: {e}");
        println!("mean power: {:.2} W", e.mean_power_w(report.latency_s()));
    }
    ExitCode::SUCCESS
}
