//! End-to-end accuracy harness for fault campaigns.
//!
//! Compares accelerator outputs against the `gnna-models` functional
//! reference captured in [`BenchCase::reference`]. A protected
//! (retry/correct) run is bit-exact against the reference up to the
//! simulator's usual float tolerance; a pass-through run at a nonzero
//! rate degrades, and this module quantifies by how much:
//!
//! * **max / mean relative error** over every output element, with the
//!   denominator floored at [`REL_EPS`] so near-zero reference values
//!   don't explode the metric;
//! * **label flips**: rows whose argmax class changed (the end-to-end
//!   "top-1 accuracy" casualty count for classification heads);
//! * **non-finite outputs**: corrupted exponent bits routinely produce
//!   `NaN`/`Inf`; these are counted separately and charged the
//!   [`ERR_CAP`] relative error instead of poisoning the means.
//!
//! Everything is computed in `f64` with a fixed iteration order, so two
//! runs of the same simulation produce byte-identical formatted numbers
//! — the property the campaign runner's determinism golden relies on.

use crate::{BenchCase, BenchError};
use gnna_core::config::AcceleratorConfig;
use gnna_core::stats::SimReport;
use gnna_core::system::System;
use gnna_core::CoreError;
use gnna_faults::FaultPlan;

/// Denominator floor for relative error (`|sim - ref| / max(|ref|, ε)`).
pub const REL_EPS: f64 = 1e-6;

/// Relative error charged to a non-finite simulated element.
pub const ERR_CAP: f64 = 1e30;

/// Accuracy of one simulated inference against the functional reference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Accuracy {
    /// Output rows compared (vertices, or graphs for readout models).
    pub rows: u64,
    /// Output elements compared.
    pub elements: u64,
    /// Maximum per-element relative error.
    pub max_rel_err: f64,
    /// Mean per-element relative error.
    pub mean_rel_err: f64,
    /// Rows whose argmax class differs from the reference.
    pub label_flips: u64,
    /// Non-finite simulated elements (NaN/Inf).
    pub nonfinite: u64,
}

impl Accuracy {
    /// Fraction of rows whose top-1 label flipped.
    pub fn flip_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.label_flips as f64 / self.rows as f64
        }
    }

    /// Whether the output is degraded at all (any error or flip).
    pub fn degraded(&self) -> bool {
        self.max_rel_err > 0.0 || self.label_flips > 0 || self.nonfinite > 0
    }
}

/// NaN-safe argmax: the first index holding the maximum, with non-finite
/// values ranked below every finite one (a row of all-NaN returns 0).
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        let v = if v.is_finite() {
            f64::from(v)
        } else {
            f64::NEG_INFINITY
        };
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Compares simulated output rows against the reference rows.
///
/// # Errors
///
/// Returns an error if the shapes disagree — that is a harness bug, not
/// a fault outcome (faults never change output shapes).
pub fn compare_rows(
    reference: &[Vec<f32>],
    simulated: &[Vec<f32>],
) -> Result<Accuracy, BenchError> {
    if reference.len() != simulated.len() {
        return Err(format!(
            "row count mismatch: reference {} vs simulated {}",
            reference.len(),
            simulated.len()
        )
        .into());
    }
    let mut acc = Accuracy {
        rows: reference.len() as u64,
        ..Accuracy::default()
    };
    let mut err_sum = 0.0f64;
    for (r, s) in reference.iter().zip(simulated) {
        if r.len() != s.len() {
            return Err(format!("row width mismatch: {} vs {}", r.len(), s.len()).into());
        }
        for (&rv, &sv) in r.iter().zip(s) {
            acc.elements += 1;
            let e = if sv.is_finite() {
                let denom = f64::from(rv).abs().max(REL_EPS);
                (f64::from(sv) - f64::from(rv)).abs() / denom
            } else {
                acc.nonfinite += 1;
                ERR_CAP
            };
            err_sum += e;
            if e > acc.max_rel_err {
                acc.max_rel_err = e;
            }
        }
        // Single-class heads cannot flip; skip the argmax for width 1.
        if r.len() > 1 && argmax(r) != argmax(s) {
            acc.label_flips += 1;
        }
    }
    if acc.elements > 0 {
        acc.mean_rel_err = err_sum / acc.elements as f64;
    }
    Ok(acc)
}

/// Reads the simulated output rows in the same layout as
/// [`BenchCase::reference`]: per-vertex rows in instance order for
/// vertex-output models, one row per graph for readout models.
///
/// # Errors
///
/// Propagates [`System::output_matrix`] errors.
pub fn simulated_rows(case: &BenchCase, sys: &System) -> Result<Vec<Vec<f32>>, BenchError> {
    let mut rows = Vec::with_capacity(case.reference.len());
    for g in 0..case.dataset.instances.len() {
        let m = sys.output_matrix(g)?;
        rows.extend((0..m.rows()).map(|i| m.row(i).to_vec()));
    }
    Ok(rows)
}

/// Outcome of one fault-injected simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRun {
    /// The run finished; outputs were compared against the reference.
    Completed {
        /// The usual simulation report (resilience + degradation).
        report: Box<SimReport>,
        /// Output accuracy against the functional reference.
        accuracy: Accuracy,
    },
    /// The run died on an unrecoverable fault (protected mode only:
    /// retransmit budget exhausted or an uncorrectable double-bit error
    /// outside pass-through).
    Unrecoverable {
        /// Faulting site (`"mem"`, `"noc"`, …).
        site: String,
        /// Structured fault message.
        msg: String,
    },
}

/// Simulates `case` on `config` under `plan` and grades the output.
///
/// [`CoreError::Fault`] is an *expected* campaign outcome and is folded
/// into [`FaultRun::Unrecoverable`]; every other error (invalid plan,
/// protocol violation) propagates.
///
/// # Errors
///
/// Propagates construction errors and non-fault simulation errors.
pub fn run_with_faults(
    case: &BenchCase,
    config: &AcceleratorConfig,
    plan: &FaultPlan,
) -> Result<FaultRun, BenchError> {
    let mut sys = System::new(config, &case.dataset.instances, case.program.clone())?;
    sys.attach_faults(plan)?;
    match sys.run() {
        Ok(report) => {
            let accuracy = compare_rows(&case.reference, &simulated_rows(case, &sys)?)?;
            Ok(FaultRun::Completed {
                report: Box::new(report),
                accuracy,
            })
        }
        Err(CoreError::Fault { site, msg, .. }) => Ok(FaultRun::Unrecoverable { site, msg }),
        Err(other) => Err(other.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rows_have_zero_error() {
        let rows = vec![vec![1.0, -2.0, 3.0], vec![0.0, 0.5, -0.5]];
        let acc = compare_rows(&rows, &rows).unwrap();
        assert_eq!(acc.rows, 2);
        assert_eq!(acc.elements, 6);
        assert_eq!(acc.max_rel_err, 0.0);
        assert_eq!(acc.mean_rel_err, 0.0);
        assert_eq!(acc.label_flips, 0);
        assert_eq!(acc.nonfinite, 0);
        assert!(!acc.degraded());
    }

    #[test]
    fn relative_error_and_flips_are_counted() {
        let reference = vec![vec![1.0, 2.0], vec![4.0, 1.0]];
        // Row 0: second element off by 50%, argmax flips 1 → 0.
        // Row 1: exact.
        let simulated = vec![vec![1.0, 1.0], vec![4.0, 1.0]];
        let acc = compare_rows(&reference, &simulated).unwrap();
        assert_eq!(acc.label_flips, 1);
        assert!((acc.max_rel_err - 0.5).abs() < 1e-12);
        assert!((acc.mean_rel_err - 0.125).abs() < 1e-12);
        assert!((acc.flip_rate() - 0.5).abs() < 1e-12);
        assert!(acc.degraded());
    }

    #[test]
    fn nonfinite_outputs_are_capped_not_propagated() {
        let reference = vec![vec![1.0, 2.0]];
        let simulated = vec![vec![f32::NAN, 2.0]];
        let acc = compare_rows(&reference, &simulated).unwrap();
        assert_eq!(acc.nonfinite, 1);
        assert_eq!(acc.max_rel_err, ERR_CAP);
        assert!(acc.mean_rel_err.is_finite());
        // NaN ranks below everything: argmax moved off index 1? No —
        // reference argmax is 1 and the NaN is at 0, so no flip.
        assert_eq!(acc.label_flips, 0);
    }

    #[test]
    fn nan_in_argmax_column_flips_label() {
        let reference = vec![vec![3.0, 1.0]];
        let simulated = vec![vec![f32::NAN, 1.0]];
        let acc = compare_rows(&reference, &simulated).unwrap();
        assert_eq!(acc.label_flips, 1);
    }

    #[test]
    fn single_class_rows_never_flip() {
        let reference = vec![vec![1.0]];
        let simulated = vec![vec![-5.0]];
        let acc = compare_rows(&reference, &simulated).unwrap();
        assert_eq!(acc.label_flips, 0);
        assert!(acc.max_rel_err > 0.0);
    }

    #[test]
    fn shape_mismatches_are_errors() {
        assert!(compare_rows(&[vec![1.0]], &[]).is_err());
        assert!(compare_rows(&[vec![1.0]], &[vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn near_zero_reference_uses_epsilon_floor() {
        let reference = vec![vec![0.0]];
        let simulated = vec![vec![1e-6]];
        let acc = compare_rows(&reference, &simulated).unwrap();
        // (f32 1e-6 is ~9.9999999e-7, so allow the conversion slack.)
        assert!((acc.max_rel_err - 1.0).abs() < 1e-6, "{}", acc.max_rel_err);
    }
}
