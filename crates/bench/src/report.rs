//! Post-hoc bottleneck analysis of `--metrics-out` / `--trace-out` files.
//!
//! The simulator dumps raw counters; this module turns them into the
//! paper-style story: per-module utilisation, a per-tile stall-cause
//! breakdown (Fig. 9/10 style), the hottest mesh links rendered as a
//! heat-map, and packet-latency quantiles. Both the `gnna-report` binary
//! and the report integration tests go through this code, so the renderer
//! is a pure function of the parsed metrics snapshot.

use gnna_telemetry::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Flat summary of one histogram metric as serialized by the registry
/// (`count/sum/min/max/mean/p50/p95/p99/p999`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistStats {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest observed sample.
    pub min: f64,
    /// Largest observed sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// 99.9th-percentile estimate (0.0 when parsing a pre-p999 dump).
    pub p999: f64,
}

/// One parsed metric: scalar (counter or gauge — the JSON form does not
/// distinguish them) or histogram summary.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter or gauge value.
    Number(f64),
    /// Histogram summary block.
    Histogram(HistStats),
}

/// A parsed `--metrics-out` file (JSON or CSV), queryable by metric name.
#[derive(Debug, Default)]
pub struct MetricsSnapshot {
    map: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Parse a metrics dump, auto-detecting JSON (`{...}`) vs CSV.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.trim_start().starts_with('{') {
            Self::parse_json(text)
        } else {
            Self::parse_csv(text)
        }
    }

    /// Parse the JSON form written by `MetricsRegistry::to_json_string`.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("metrics JSON: {e}"))?;
        let obj = doc
            .as_object()
            .ok_or_else(|| "metrics JSON root must be an object".to_string())?;
        let mut map = BTreeMap::new();
        for (name, v) in obj {
            let value = match v {
                JsonValue::Number(n) => MetricValue::Number(*n),
                JsonValue::Object(_) => MetricValue::Histogram(HistStats {
                    count: field(v, "count") as u64,
                    sum: field(v, "sum"),
                    min: field(v, "min"),
                    max: field(v, "max"),
                    mean: field(v, "mean"),
                    p50: field(v, "p50"),
                    p95: field(v, "p95"),
                    p99: field(v, "p99"),
                    p999: field(v, "p999"),
                }),
                other => return Err(format!("metric '{name}' has unexpected value {other:?}")),
            };
            map.insert(name.clone(), value);
        }
        Ok(Self { map })
    }

    /// Parse the CSV form written by `MetricsRegistry::to_csv_string`
    /// (header `metric,kind,value,count,sum,min,max,mean,p50,p95,p99,p999`;
    /// the trailing `p999` column is optional so pre-p999 dumps still
    /// parse).
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty metrics CSV")?;
        if !header.starts_with("metric,kind,") {
            return Err(format!("unrecognized metrics CSV header: {header}"));
        }
        let mut map = BTreeMap::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() < 11 {
                return Err(format!("metrics CSV row {} is short: {line}", lineno + 2));
            }
            let num = |i: usize| -> f64 { cols[i].parse().unwrap_or(0.0) };
            let value = match cols[1] {
                "counter" | "gauge" => MetricValue::Number(num(2)),
                "histogram" => MetricValue::Histogram(HistStats {
                    count: num(3) as u64,
                    sum: num(4),
                    min: num(5),
                    max: num(6),
                    mean: num(7),
                    p50: num(8),
                    p95: num(9),
                    p99: num(10),
                    p999: if cols.len() > 11 { num(11) } else { 0.0 },
                }),
                other => return Err(format!("unknown metric kind '{other}' in CSV")),
            };
            map.insert(cols[0].to_string(), value);
        }
        Ok(Self { map })
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Scalar metric (counter or gauge) by name.
    pub fn number(&self, name: &str) -> Option<f64> {
        match self.map.get(name) {
            Some(MetricValue::Number(v)) => Some(*v),
            _ => None,
        }
    }

    /// Scalar metric truncated to `u64` (all counters are integral).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.number(name).map(|v| v as u64)
    }

    /// Histogram metric by name.
    pub fn histogram(&self, name: &str) -> Option<HistStats> {
        match self.map.get(name) {
            Some(MetricValue::Histogram(h)) => Some(*h),
            _ => None,
        }
    }

    /// All metric names in the snapshot, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Raw metric value by exact name.
    pub fn get_value(&self, name: &str) -> Option<&MetricValue> {
        self.map.get(name)
    }

    /// Metrics whose name starts with `prefix`, prefix stripped.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a MetricValue)> + 'a {
        self.map
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(move |(k, v)| (&k[prefix.len()..], v))
    }
}

fn field(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(|f| f.as_f64()).unwrap_or(0.0)
}

/// Shared ASCII heat-map renderer: one glyph per router `(x, y)`, darker
/// glyph = larger summed cell value. `unit` names the quantity in the
/// legend line. Empty string when there are no cells.
fn ascii_heatmap(cells: &[(usize, usize, u64)], unit: &str) -> String {
    if cells.is_empty() {
        return String::new();
    }
    let width = cells.iter().map(|&(x, _, _)| x).max().unwrap_or(0) + 1;
    let height = cells.iter().map(|&(_, y, _)| y).max().unwrap_or(0) + 1;
    let mut load = vec![0u64; width * height];
    for &(x, y, v) in cells {
        load[y * width + x] += v;
    }
    let peak = load.iter().copied().max().unwrap_or(0).max(1);
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for y in 0..height {
        out.push_str("  ");
        for x in 0..width {
            let frac = load[y * width + x] as f64 / peak as f64;
            let idx = (frac * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
            out.push(' ');
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "  (row = mesh y, col = mesh x; ' '..'@' = 0..{peak} {unit})"
    );
    out
}

/// Parse the `*.energy.*_pj` counter family into an [`EnergyBreakdown`].
/// Returns `None` when the dump carries no energy attribution (untraced
/// or counter-level runs).
fn parse_energy(snap: &MetricsSnapshot) -> Option<EnergyBreakdown> {
    let total_pj = snap.counter("system.energy.total_pj")?;
    let mut e = EnergyBreakdown {
        total_pj,
        ..Default::default()
    };
    let mut modules: BTreeMap<&'static str, u64> = BTreeMap::new();
    // On-tile sites: `tile{i}.energy.{site}_pj`.
    for i in 0.. {
        let mut tile_pj = 0u64;
        let mut seen = false;
        for site in ["dna", "agg", "sram", "gpe"] {
            if let Some(pj) = snap.counter(&format!("tile{i}.energy.{site}_pj")) {
                seen = true;
                tile_pj += pj;
                *modules.entry(site_key(site)).or_insert(0) += pj;
            }
        }
        if !seen {
            break;
        }
        e.tiles.push((i, tile_pj));
    }
    // Memory controllers: `mem.energy.ctrl{i}_pj` → "dram".
    for i in 0.. {
        let Some(pj) = snap.counter(&format!("mem.energy.ctrl{i}_pj")) else {
            break;
        };
        *modules.entry("dram").or_insert(0) += pj;
    }
    // NoC links: `noc.energy.link.{x}_{y}.{D}_pj` → "noc" + per-link rows.
    for (rest, v) in snap.with_prefix("noc.energy.link.") {
        let MetricValue::Number(n) = v else { continue };
        let Some(rest) = rest.strip_suffix("_pj") else {
            continue;
        };
        let mut parts = rest.split('.');
        let (Some(coords), Some(dir)) = (parts.next(), parts.next()) else {
            continue;
        };
        let mut xy = coords.split('_');
        let (Some(x), Some(y)) = (
            xy.next().and_then(|s| s.parse().ok()),
            xy.next().and_then(|s| s.parse().ok()),
        ) else {
            continue;
        };
        let pj = *n as u64;
        *modules.entry("noc").or_insert(0) += pj;
        e.links.push(EnergyLink {
            x,
            y,
            dir: dir.to_string(),
            pj,
        });
    }
    e.links.sort_by(|a, b| {
        b.pj.cmp(&a.pj)
            .then(a.y.cmp(&b.y))
            .then(a.x.cmp(&b.x))
            .then(a.dir.cmp(&b.dir))
    });
    // Per-layer partition: `system.energy.layer{k}_pj`.
    for k in 0.. {
        let Some(pj) = snap.counter(&format!("system.energy.layer{k}_pj")) else {
            break;
        };
        e.layers.push(pj);
    }
    e.modules = modules
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    e.modules.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Some(e)
}

/// Parsed `*.fault.*` counter family for one injection site (`tile{i}`
/// DNA stall bubbles, `mem{i}` read-path ECC, or `noc` link CRC). All
/// zeros when the site recorded no activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteFaults {
    /// Faults injected by the deterministic plan.
    pub injected: u64,
    /// Faults absorbed inline (ECC single-bit, CRC retransmit within
    /// budget, DNA bubbles).
    pub corrected: u64,
    /// Faults resolved by a retry with a latency penalty.
    pub retried: u64,
    /// Faults the protection model could not absorb.
    pub unrecoverable: u64,
    /// NoC flits delivered with corrupted payloads (CRC caught).
    pub corrupted: u64,
    /// NoC flits dropped in transit (CRC/timeout caught).
    pub dropped: u64,
    /// Extra cycles spent on retries/backoff/bubbles.
    pub retry_cycles: u64,
}

impl SiteFaults {
    /// The accounting invariant: every injected fault is classified as
    /// exactly one of corrected / retried / unrecoverable.
    pub fn partition_holds(&self) -> bool {
        self.injected == self.corrected + self.retried + self.unrecoverable
    }

    /// Accumulate another site's counters into this one.
    pub fn merge(&mut self, other: &SiteFaults) {
        self.injected += other.injected;
        self.corrected += other.corrected;
        self.retried += other.retried;
        self.unrecoverable += other.unrecoverable;
        self.corrupted += other.corrupted;
        self.dropped += other.dropped;
        self.retry_cycles += other.retry_cycles;
    }
}

/// Parse every `{site}.fault.{counter}` metric into per-site rows, in
/// site order. Empty when the dump carries no fault counters (the
/// fault-free case: the simulator only emits the family when a fault
/// plan is attached).
fn parse_faults(snap: &MetricsSnapshot) -> Vec<(String, SiteFaults)> {
    const FAMILY: &str = ".fault.";
    let mut map: BTreeMap<String, SiteFaults> = BTreeMap::new();
    for name in snap.names() {
        let Some(pos) = name.find(FAMILY) else {
            continue;
        };
        let Some(v) = snap.counter(name) else {
            continue;
        };
        let site = name[..pos].to_string();
        let entry = map.entry(site).or_default();
        match &name[pos + FAMILY.len()..] {
            "injected" => entry.injected = v,
            "corrected" => entry.corrected = v,
            "retried" => entry.retried = v,
            "unrecoverable" => entry.unrecoverable = v,
            "corrupted" => entry.corrupted = v,
            "dropped" => entry.dropped = v,
            "retry_cycles" => entry.retry_cycles = v,
            _ => {}
        }
    }
    map.into_iter().collect()
}

/// Canonical module key for an on-tile energy site.
fn site_key(site: &str) -> &'static str {
    match site {
        "dna" => "dna",
        "agg" => "agg",
        "sram" => "sram",
        _ => "gpe",
    }
}

/// Inventory of a `--trace-out` Chrome-trace file: event/track counts and
/// the busiest span names, for the report's trace section.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total number of trace events (including metadata).
    pub events: u64,
    /// Number of `process_name` metadata records (one per module process).
    pub processes: u64,
    /// Number of `thread_name` metadata records (one per track).
    pub tracks: u64,
    /// Span-begin counts per event name.
    pub span_begins: BTreeMap<String, u64>,
    /// Instant counts per event name.
    pub instants: BTreeMap<String, u64>,
    /// Largest timestamp seen (µs in the Chrome trace convention).
    pub last_ts: f64,
}

/// Parse a Chrome-trace JSON document into a [`TraceSummary`].
pub fn parse_trace_json(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text).map_err(|e| format!("trace JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("trace JSON has no traceEvents array")?;
    let mut s = TraceSummary::default();
    for e in events {
        s.events += 1;
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("");
        match e.get("ph").and_then(|p| p.as_str()) {
            Some("M") if name == "process_name" => s.processes += 1,
            Some("M") if name == "thread_name" => s.tracks += 1,
            Some("B") => *s.span_begins.entry(name.to_string()).or_insert(0) += 1,
            Some("i") => *s.instants.entry(name.to_string()).or_insert(0) += 1,
            _ => {}
        }
        if let Some(ts) = e.get("ts").and_then(|t| t.as_f64()) {
            s.last_ts = s.last_ts.max(ts);
        }
    }
    Ok(s)
}

/// Per-tile utilisation figures derived from the harvested counters. All
/// percentages are relative to the tile's core-clock cycle count.
#[derive(Debug, Clone, Default)]
pub struct TileUtilisation {
    /// Tile index.
    pub tile: usize,
    /// GPE busy (op + thread-switch) cycles.
    pub gpe_busy: u64,
    /// GPE blocked (idle + stall) cycles.
    pub gpe_blocked: u64,
    /// Aggregation-module busy cycles.
    pub agg_busy: u64,
    /// DNA busy cycles.
    pub dna_busy: u64,
    /// Blocked GPE cycles charged to each stall cause (cause, cycles).
    pub stalls: Vec<(String, u64)>,
}

/// One mesh link with its cumulative busy-cycle count.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// Router x coordinate.
    pub x: usize,
    /// Router y coordinate.
    pub y: usize,
    /// Outgoing direction (`N`/`E`/`S`/`W`).
    pub dir: String,
    /// Cycles the link spent forwarding flits.
    pub busy: u64,
}

/// One mesh link with its attributed energy in integer picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLink {
    /// Router x coordinate.
    pub x: usize,
    /// Router y coordinate.
    pub y: usize,
    /// Outgoing direction (`N`/`E`/`S`/`W`, or `L` for the local ports).
    pub dir: String,
    /// Energy attributed to this link, integer picojoules.
    pub pj: u64,
}

/// Parsed `*.energy.*_pj` counter family: the per-module / per-layer
/// energy attribution exported by event-level traced runs. All values are
/// integer picojoules; the per-module, per-tile, and per-layer families
/// each sum exactly to [`EnergyBreakdown::total_pj`] (the conservation
/// invariant enforced by the simulator's largest-remainder export).
#[derive(Debug, Clone, Default)]
pub struct EnergyBreakdown {
    /// Run total, integer picojoules (`system.energy.total_pj`).
    pub total_pj: u64,
    /// Energy per module class (`dna`/`agg`/`sram`/`gpe`/`dram`/`noc`),
    /// aggregated across tiles/controllers/links, descending.
    pub modules: Vec<(String, u64)>,
    /// Per-tile energy totals `(tile, pJ)` (on-tile sites only).
    pub tiles: Vec<(usize, u64)>,
    /// Per-link NoC energy, sorted descending by pJ.
    pub links: Vec<EnergyLink>,
    /// Per-layer energy (`system.energy.layerK_pj`), in layer order.
    pub layers: Vec<u64>,
}

impl EnergyBreakdown {
    /// ASCII mesh heat-map of per-router NoC energy (sum of outgoing
    /// link energies). Empty string when no link data exists.
    pub fn mesh_heatmap(&self) -> String {
        let cells: Vec<(usize, usize, u64)> = self.links.iter().map(|l| (l.x, l.y, l.pj)).collect();
        ascii_heatmap(&cells, "pJ")
    }
}

/// The assembled bottleneck report, ready to render as markdown or CSV.
#[derive(Debug, Default)]
pub struct BottleneckReport {
    /// Total master-clock (NoC) cycles simulated.
    pub total_cycles: u64,
    /// Cycles spent in weight/config distribution.
    pub config_cycles: u64,
    /// NoC-to-core integer clock divider.
    pub clock_divider: u64,
    /// Core clock in Hz.
    pub core_clock_hz: f64,
    /// NoC clock in Hz.
    pub noc_clock_hz: f64,
    /// Per-tile utilisation rows.
    pub tiles: Vec<TileUtilisation>,
    /// Aggregate stall-cause totals across all tiles, descending.
    pub stall_totals: Vec<(String, u64)>,
    /// All mesh links, sorted by busy cycles descending.
    pub links: Vec<LinkLoad>,
    /// End-to-end packet latency histogram, when traced.
    pub latency: Option<HistStats>,
    /// Packet hop-count histogram, when traced.
    pub hops: Option<HistStats>,
    /// Per-memory-controller `(index, requests, dram_bytes, efficiency)`.
    pub mems: Vec<(usize, u64, u64, f64)>,
    /// Per-site fault-injection outcomes (`{site}.fault.*`). Empty when
    /// the run had no fault plan attached (the family is only emitted
    /// under injection).
    pub resilience: Vec<(String, SiteFaults)>,
    /// Energy attribution, when the run was traced at event level.
    pub energy: Option<EnergyBreakdown>,
    /// Host-phase wall-clock profile, when the run was profiled
    /// (`gnna-sim --profile-out`/`--profile-json`).
    pub host_profile: Option<HostProfile>,
    /// Optional trace-file inventory.
    pub trace: Option<TraceSummary>,
}

/// One host-profile phase row parsed from `host.profile.*` counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HostPhaseRow {
    /// `;`-joined phase path (e.g. `run;layer:0;cycles;gpe`).
    pub path: String,
    /// Wall-clock nanoseconds spent in this phase excluding children.
    pub self_ns: u64,
    /// Wall-clock nanoseconds including children.
    pub total_ns: u64,
    /// Times the phase was entered (0 for sampled hot phases).
    pub calls: u64,
}

/// Host-phase wall-clock profile (`host.profile.*` metric family).
#[derive(Debug, Default, Clone)]
pub struct HostProfile {
    /// Phase rows sorted by self time descending.
    pub phases: Vec<HostPhaseRow>,
    /// Wall-clock nanoseconds covered by the profiler.
    pub wall_ns: u64,
    /// Simulated compute cycles observed by the hot loop.
    pub cycles_total: u64,
    /// Cycles that paid for hot-loop lap timing.
    pub cycles_sampled: u64,
    /// Hot-loop sampling stride (1 in N cycles timed).
    pub sample_every: u64,
    /// Host throughput: simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

fn parse_host_profile(snap: &MetricsSnapshot) -> Option<HostProfile> {
    let mut rows: BTreeMap<String, HostPhaseRow> = BTreeMap::new();
    for (rest, v) in snap.with_prefix("host.profile.") {
        let MetricValue::Number(n) = v else { continue };
        // Phase counters are `host.profile.<field>.<path>`; run-level
        // gauges (`wall_ns`, ...) have no second dot and are skipped here.
        let Some((field, path)) = rest.split_once('.') else {
            continue;
        };
        let row = rows
            .entry(path.to_string())
            .or_insert_with(|| HostPhaseRow {
                path: path.to_string(),
                ..Default::default()
            });
        match field {
            "self_ns" => row.self_ns = *n as u64,
            "total_ns" => row.total_ns = *n as u64,
            "calls" => row.calls = *n as u64,
            _ => {}
        }
    }
    let wall_ns = snap.number("host.profile.wall_ns");
    if rows.is_empty() && wall_ns.is_none() {
        return None;
    }
    let mut phases: Vec<_> = rows.into_values().collect();
    phases.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    Some(HostProfile {
        phases,
        wall_ns: wall_ns.unwrap_or(0.0) as u64,
        cycles_total: snap.number("host.profile.cycles_total").unwrap_or(0.0) as u64,
        cycles_sampled: snap.number("host.profile.cycles_sampled").unwrap_or(0.0) as u64,
        sample_every: snap.number("host.profile.sample_every").unwrap_or(0.0) as u64,
        cycles_per_sec: snap.number("host.profile.cycles_per_sec").unwrap_or(0.0),
    })
}

impl BottleneckReport {
    /// Build the report from a parsed metrics snapshot and an optional
    /// trace summary.
    pub fn build(snap: &MetricsSnapshot, trace: Option<TraceSummary>) -> Self {
        let mut r = BottleneckReport {
            total_cycles: snap.counter("system.total_cycles").unwrap_or(0),
            config_cycles: snap.counter("system.config_cycles").unwrap_or(0),
            clock_divider: snap.counter("system.clock_divider").unwrap_or(1).max(1),
            core_clock_hz: snap.number("system.core_clock_hz").unwrap_or(0.0),
            noc_clock_hz: snap.number("system.noc_clock_hz").unwrap_or(0.0),
            latency: snap.histogram("noc.packet_latency"),
            hops: snap.histogram("noc.packet_hops"),
            trace,
            ..Default::default()
        };
        // Per-tile rows: walk tile indices until one has no GPE counters.
        for i in 0.. {
            let p = format!("tile{i}.");
            let get = |suffix: &str| snap.counter(&format!("{p}{suffix}"));
            let Some(op) = get("gpe.op_cycles") else {
                break;
            };
            let mut t = TileUtilisation {
                tile: i,
                gpe_busy: op + get("gpe.switch_cycles").unwrap_or(0),
                gpe_blocked: get("gpe.idle_cycles").unwrap_or(0)
                    + get("gpe.stall_cycles").unwrap_or(0),
                agg_busy: get("agg.busy_cycles").unwrap_or(0),
                dna_busy: get("dna.busy_cycles").unwrap_or(0),
                stalls: Vec::new(),
            };
            let stall_prefix = format!("{p}stall.");
            for (cause, v) in snap.with_prefix(&stall_prefix) {
                if let MetricValue::Number(n) = v {
                    t.stalls.push((cause.to_string(), *n as u64));
                }
            }
            r.tiles.push(t);
        }
        // Aggregate stall causes across tiles, descending by cycles.
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for t in &r.tiles {
            for (cause, v) in &t.stalls {
                *totals.entry(cause.clone()).or_insert(0) += v;
            }
        }
        r.stall_totals = totals.into_iter().collect();
        r.stall_totals
            .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        // Mesh links: `noc.link.{x}_{y}.{D}.busy_cycles`.
        for (rest, v) in snap.with_prefix("noc.link.") {
            let MetricValue::Number(n) = v else { continue };
            let Some(rest) = rest.strip_suffix(".busy_cycles") else {
                continue;
            };
            let mut parts = rest.split('.');
            let (Some(coords), Some(dir)) = (parts.next(), parts.next()) else {
                continue;
            };
            let mut xy = coords.split('_');
            let (Some(x), Some(y)) = (
                xy.next().and_then(|s| s.parse().ok()),
                xy.next().and_then(|s| s.parse().ok()),
            ) else {
                continue;
            };
            r.links.push(LinkLoad {
                x,
                y,
                dir: dir.to_string(),
                busy: *n as u64,
            });
        }
        r.links.sort_by(|a, b| {
            b.busy
                .cmp(&a.busy)
                .then(a.y.cmp(&b.y))
                .then(a.x.cmp(&b.x))
                .then(a.dir.cmp(&b.dir))
        });
        // Memory controllers.
        for i in 0.. {
            let Some(req) = snap.counter(&format!("mem{i}.requests")) else {
                break;
            };
            r.mems.push((
                i,
                req,
                snap.counter(&format!("mem{i}.dram_bytes")).unwrap_or(0),
                snap.number(&format!("mem{i}.efficiency")).unwrap_or(0.0),
            ));
        }
        r.resilience = parse_faults(snap);
        r.energy = parse_energy(snap);
        r.host_profile = parse_host_profile(snap);
        r
    }

    /// Core-clock cycles (exact integer division by the divider).
    pub fn core_cycles(&self) -> u64 {
        self.total_cycles / self.clock_divider
    }

    /// ASCII mesh heat-map: one glyph per router, darker = more link
    /// traffic out of that router. Empty string when no link data exists.
    pub fn mesh_heatmap(&self) -> String {
        let cells: Vec<(usize, usize, u64)> =
            self.links.iter().map(|l| (l.x, l.y, l.busy)).collect();
        ascii_heatmap(&cells, "busy cycles")
    }

    /// Render the report as markdown.
    pub fn to_markdown(&self, top_k: usize) -> String {
        let mut o = String::new();
        let pct = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                100.0 * num as f64 / den as f64
            }
        };
        let _ = writeln!(o, "# gnna bottleneck report\n");

        let _ = writeln!(o, "## System\n");
        let _ = writeln!(o, "| metric | value |");
        let _ = writeln!(o, "|---|---|");
        let _ = writeln!(o, "| total cycles (NoC clock) | {} |", self.total_cycles);
        let _ = writeln!(o, "| config cycles | {} |", self.config_cycles);
        let _ = writeln!(
            o,
            "| core cycles (divider {}) | {} |",
            self.clock_divider,
            self.core_cycles()
        );
        let _ = writeln!(
            o,
            "| clocks | core {:.2} GHz / NoC {:.2} GHz |",
            self.core_clock_hz / 1e9,
            self.noc_clock_hz / 1e9
        );
        if self.noc_clock_hz > 0.0 {
            let _ = writeln!(
                o,
                "| latency | {:.3} ms |",
                self.total_cycles as f64 / self.noc_clock_hz * 1e3
            );
        }

        let _ = writeln!(o, "\n## Module utilisation (of core cycles)\n");
        let _ = writeln!(o, "| tile | GPE busy | GPE blocked | AGG busy | DNA busy |");
        let _ = writeln!(o, "|---|---|---|---|---|");
        let cc = self.core_cycles();
        for t in &self.tiles {
            let _ = writeln!(
                o,
                "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
                t.tile,
                pct(t.gpe_busy, cc),
                pct(t.gpe_blocked, cc),
                pct(t.agg_busy, cc),
                pct(t.dna_busy, cc)
            );
        }
        if !self.tiles.is_empty() {
            let n = self.tiles.len() as u64;
            let sum = |f: fn(&TileUtilisation) -> u64| self.tiles.iter().map(f).sum::<u64>() / n;
            let _ = writeln!(
                o,
                "| **mean** | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
                pct(sum(|t| t.gpe_busy), cc),
                pct(sum(|t| t.gpe_blocked), cc),
                pct(sum(|t| t.agg_busy), cc),
                pct(sum(|t| t.dna_busy), cc)
            );
        }

        let _ = writeln!(o, "\n## Stall breakdown (blocked GPE cycles by cause)\n");
        let blocked: u64 = self.stall_totals.iter().map(|(_, v)| v).sum();
        let _ = writeln!(o, "| cause | cycles | share | |");
        let _ = writeln!(o, "|---|---|---|---|");
        for (cause, v) in &self.stall_totals {
            let share = pct(*v, blocked);
            let bar = "#".repeat((share / 4.0).round() as usize);
            let _ = writeln!(o, "| {cause} | {v} | {share:.1}% | `{bar}` |");
        }
        let _ = writeln!(o, "| **total** | {blocked} | 100.0% | |");

        let _ = writeln!(o, "\n## NoC\n");
        if self.links.is_empty() {
            let _ = writeln!(
                o,
                "_No per-link counters in this metrics file (run with an \
                 event-level trace to collect them)._"
            );
        } else {
            let _ = writeln!(o, "Top {top_k} hottest links:\n");
            let _ = writeln!(o, "| router | dir | busy cycles | link util |");
            let _ = writeln!(o, "|---|---|---|---|");
            for l in self.links.iter().take(top_k) {
                let _ = writeln!(
                    o,
                    "| ({},{}) | {} | {} | {:.1}% |",
                    l.x,
                    l.y,
                    l.dir,
                    l.busy,
                    pct(l.busy, self.total_cycles)
                );
            }
            let _ = writeln!(o, "\nRouter heat-map (total outgoing link traffic):\n");
            let _ = writeln!(o, "```\n{}```", self.mesh_heatmap());
        }
        for (name, h) in [("packet latency", self.latency), ("packet hops", self.hops)] {
            if let Some(h) = h {
                let _ = writeln!(
                    o,
                    "\n{name} ({} packets): p50 {:.0}, p95 {:.0}, p99 {:.0}, \
                     p99.9 {:.0}, mean {:.1}, max {:.0} cycles",
                    h.count, h.p50, h.p95, h.p99, h.p999, h.mean, h.max
                );
            }
        }
        if self.latency.is_none() && self.hops.is_none() {
            let _ = writeln!(
                o,
                "\n_Packet latency/hop histograms not recorded in this \
                 metrics file._"
            );
        }

        let _ = writeln!(o, "\n## Memory controllers\n");
        if self.mems.is_empty() {
            let _ = writeln!(
                o,
                "_Memory-controller counters not recorded in this metrics \
                 file._"
            );
        } else {
            let _ = writeln!(o, "| ctrl | requests | DRAM bytes | efficiency |");
            let _ = writeln!(o, "|---|---|---|---|");
            for (i, req, bytes, eff) in &self.mems {
                let _ = writeln!(o, "| mem{i} | {req} | {bytes} | {:.1}% |", eff * 100.0);
            }
        }

        let _ = writeln!(o, "\n## Resilience\n");
        if self.resilience.is_empty() {
            let _ = writeln!(
                o,
                "_Fault counters not recorded in this metrics file \
                 (fault-free run; use `gnna-sim --fault-rate` to inject \
                 faults)._"
            );
        } else {
            let _ = writeln!(
                o,
                "| site | injected | corrected | retried | unrecoverable \
                 | corrupted | dropped | retry cycles |"
            );
            let _ = writeln!(o, "|---|---|---|---|---|---|---|---|");
            let mut total = SiteFaults::default();
            for (site, f) in &self.resilience {
                total.merge(f);
                let _ = writeln!(
                    o,
                    "| {site} | {} | {} | {} | {} | {} | {} | {} |",
                    f.injected,
                    f.corrected,
                    f.retried,
                    f.unrecoverable,
                    f.corrupted,
                    f.dropped,
                    f.retry_cycles
                );
            }
            let _ = writeln!(
                o,
                "| **total** | {} | {} | {} | {} | {} | {} | {} |",
                total.injected,
                total.corrected,
                total.retried,
                total.unrecoverable,
                total.corrupted,
                total.dropped,
                total.retry_cycles
            );
            let _ = writeln!(
                o,
                "\nPartition check: injected ({}) == corrected ({}) + \
                 retried ({}) + unrecoverable ({}) — {}.",
                total.injected,
                total.corrected,
                total.retried,
                total.unrecoverable,
                if total.partition_holds() {
                    "holds"
                } else {
                    "**VIOLATED**"
                }
            );
            if total.unrecoverable > 0 {
                let _ = writeln!(
                    o,
                    "\n**{} unrecoverable fault(s)** — the run ended with a \
                     structured fault error; cycle counts cover the partial \
                     run only.",
                    total.unrecoverable
                );
            }
        }

        if let Some(e) = &self.energy {
            let _ = writeln!(o, "\n## Energy\n");
            let _ = writeln!(
                o,
                "Total attributed energy: **{} pJ** ({:.3} µJ).\n",
                e.total_pj,
                e.total_pj as f64 / 1e6
            );
            let _ = writeln!(o, "| module | energy (pJ) | share | |");
            let _ = writeln!(o, "|---|---|---|---|");
            for (module, pj) in &e.modules {
                let share = pct(*pj, e.total_pj);
                let bar = "#".repeat((share / 4.0).round() as usize);
                let _ = writeln!(o, "| {module} | {pj} | {share:.1}% | `{bar}` |");
            }
            let _ = writeln!(o, "| **total** | {} | 100.0% | |", e.total_pj);
            if e.tiles.len() > 1 {
                let _ = writeln!(o, "\nPer-tile energy (on-tile sites only):\n");
                let _ = writeln!(o, "| tile | energy (pJ) | share of total |");
                let _ = writeln!(o, "|---|---|---|");
                for (tile, pj) in &e.tiles {
                    let _ = writeln!(o, "| {tile} | {pj} | {:.1}% |", pct(*pj, e.total_pj));
                }
            }
            if !e.links.is_empty() {
                let _ = writeln!(o, "\nTop {top_k} NoC energy hot spots:\n");
                let _ = writeln!(o, "| router | dir | energy (pJ) |");
                let _ = writeln!(o, "|---|---|---|");
                for l in e.links.iter().take(top_k) {
                    let _ = writeln!(o, "| ({},{}) | {} | {} |", l.x, l.y, l.dir, l.pj);
                }
                let _ = writeln!(o, "\nEnergy heat-map (outgoing link energy per router):\n");
                let _ = writeln!(o, "```\n{}```", e.mesh_heatmap());
            }
            if !e.layers.is_empty() {
                let _ = writeln!(o, "\nPer-layer energy:\n");
                let _ = writeln!(o, "| layer | energy (pJ) | share |");
                let _ = writeln!(o, "|---|---|---|");
                for (k, pj) in e.layers.iter().enumerate() {
                    let _ = writeln!(o, "| {k} | {pj} | {:.1}% |", pct(*pj, e.total_pj));
                }
            }
        } else {
            let _ = writeln!(
                o,
                "\n_Energy attribution not recorded in this metrics file \
                 (run with an event-level trace to collect it)._"
            );
        }

        if let Some(hp) = &self.host_profile {
            let _ = writeln!(o, "\n## Host profile\n");
            let _ = writeln!(
                o,
                "Wall clock {:.3} s for {} compute cycles — **{:.0} cycles/sec** \
                 (hot loop sampled 1 in {}, {} cycles timed).\n",
                hp.wall_ns as f64 / 1e9,
                hp.cycles_total,
                hp.cycles_per_sec,
                hp.sample_every.max(1),
                hp.cycles_sampled
            );
            let shown = top_k.max(16);
            let _ = writeln!(o, "| phase | self (ms) | self % | total (ms) | calls |");
            let _ = writeln!(o, "|---|---|---|---|---|");
            let wall = hp.wall_ns.max(1);
            for p in hp.phases.iter().take(shown) {
                let _ = writeln!(
                    o,
                    "| {} | {:.3} | {:.1}% | {:.3} | {} |",
                    p.path,
                    p.self_ns as f64 / 1e6,
                    pct(p.self_ns, wall),
                    p.total_ns as f64 / 1e6,
                    p.calls
                );
            }
            if hp.phases.len() > shown {
                let _ = writeln!(
                    o,
                    "\n_{} more phase(s) below the top {shown} by self time._",
                    hp.phases.len() - shown
                );
            }
        }

        if let Some(t) = &self.trace {
            let _ = writeln!(o, "\n## Trace inventory\n");
            let _ = writeln!(
                o,
                "{} events across {} tracks in {} processes; last timestamp {:.0} µs.",
                t.events, t.tracks, t.processes, t.last_ts
            );
            let mut spans: Vec<_> = t.span_begins.iter().collect();
            spans.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            if !spans.is_empty() {
                let _ = writeln!(o, "\n| span | count |");
                let _ = writeln!(o, "|---|---|");
                for (name, count) in spans.into_iter().take(top_k) {
                    let _ = writeln!(o, "| {name} | {count} |");
                }
            }
        }
        o
    }

    /// Render the report as flat CSV (`section,metric,value` rows).
    pub fn to_csv(&self) -> String {
        let mut o = String::from("section,metric,value\n");
        let mut row = |section: &str, metric: &str, value: String| {
            let _ = writeln!(o, "{section},{metric},{value}");
        };
        row("system", "total_cycles", self.total_cycles.to_string());
        row("system", "config_cycles", self.config_cycles.to_string());
        row("system", "clock_divider", self.clock_divider.to_string());
        row("system", "core_cycles", self.core_cycles().to_string());
        let cc = self.core_cycles().max(1) as f64;
        for t in &self.tiles {
            let tile = format!("tile{}", t.tile);
            row(
                &tile,
                "gpe_busy_pct",
                format!("{:.3}", 100.0 * t.gpe_busy as f64 / cc),
            );
            row(
                &tile,
                "gpe_blocked_pct",
                format!("{:.3}", 100.0 * t.gpe_blocked as f64 / cc),
            );
            row(
                &tile,
                "agg_busy_pct",
                format!("{:.3}", 100.0 * t.agg_busy as f64 / cc),
            );
            row(
                &tile,
                "dna_busy_pct",
                format!("{:.3}", 100.0 * t.dna_busy as f64 / cc),
            );
            for (cause, v) in &t.stalls {
                row(&tile, &format!("stall.{cause}"), v.to_string());
            }
        }
        for (cause, v) in &self.stall_totals {
            row("stalls", cause, v.to_string());
        }
        for l in &self.links {
            row(
                "noc.link",
                &format!("{}_{}.{}", l.x, l.y, l.dir),
                l.busy.to_string(),
            );
        }
        for (name, h) in [("latency", self.latency), ("hops", self.hops)] {
            if let Some(h) = h {
                row("noc", &format!("{name}.count"), h.count.to_string());
                row("noc", &format!("{name}.p50"), format!("{:.3}", h.p50));
                row("noc", &format!("{name}.p95"), format!("{:.3}", h.p95));
                row("noc", &format!("{name}.p99"), format!("{:.3}", h.p99));
                row("noc", &format!("{name}.p999"), format!("{:.3}", h.p999));
            }
        }
        for (i, req, bytes, eff) in &self.mems {
            let m = format!("mem{i}");
            row(&m, "requests", req.to_string());
            row(&m, "dram_bytes", bytes.to_string());
            row(&m, "efficiency", format!("{eff:.4}"));
        }
        for (site, f) in &self.resilience {
            for (counter, v) in [
                ("injected", f.injected),
                ("corrected", f.corrected),
                ("retried", f.retried),
                ("unrecoverable", f.unrecoverable),
                ("corrupted", f.corrupted),
                ("dropped", f.dropped),
                ("retry_cycles", f.retry_cycles),
            ] {
                row("resilience", &format!("{site}.{counter}"), v.to_string());
            }
        }
        if let Some(e) = &self.energy {
            row("energy", "total_pj", e.total_pj.to_string());
            for (module, pj) in &e.modules {
                row("energy", &format!("module.{module}_pj"), pj.to_string());
            }
            for (tile, pj) in &e.tiles {
                row("energy", &format!("tile{tile}_pj"), pj.to_string());
            }
            for l in &e.links {
                row(
                    "energy.link",
                    &format!("{}_{}.{}", l.x, l.y, l.dir),
                    l.pj.to_string(),
                );
            }
            for (k, pj) in e.layers.iter().enumerate() {
                row("energy", &format!("layer{k}_pj"), pj.to_string());
            }
        }
        if let Some(hp) = &self.host_profile {
            row("host", "wall_ns", hp.wall_ns.to_string());
            row("host", "cycles_total", hp.cycles_total.to_string());
            row(
                "host",
                "cycles_per_sec",
                format!("{:.1}", hp.cycles_per_sec),
            );
            // Emit phase rows in path order, not self-time order: wall
            // timings differ every run, and goldens diffing this CSV
            // must not flap on row order when near-equal phases swap.
            let mut by_path: Vec<&HostPhaseRow> = hp.phases.iter().collect();
            by_path.sort_by(|a, b| a.path.cmp(&b.path));
            for p in by_path {
                row(
                    "host.profile",
                    &format!("{}.self_ns", p.path),
                    p.self_ns.to_string(),
                );
            }
        }
        if let Some(t) = &self.trace {
            row("trace", "events", t.events.to_string());
            row("trace", "tracks", t.tracks.to_string());
            row("trace", "processes", t.processes.to_string());
        }
        o
    }
}

/// One metric compared across two runs. `None` means the metric was
/// absent from that run's dump (mismatched-key case).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name (section-local, e.g. `total_cycles` or `(1,0) E`).
    pub name: String,
    /// Value in run A, when present.
    pub a: Option<f64>,
    /// Value in run B, when present.
    pub b: Option<f64>,
}

impl MetricDelta {
    fn new(name: impl Into<String>, a: Option<f64>, b: Option<f64>) -> Self {
        Self {
            name: name.into(),
            a,
            b,
        }
    }

    /// Absolute delta `B - A`, when both sides are present.
    pub fn delta(&self) -> Option<f64> {
        Some(self.b? - self.a?)
    }

    /// Percent delta `(B - A) / A * 100`, when both sides are present and
    /// A is non-zero.
    pub fn pct(&self) -> Option<f64> {
        let (a, b) = (self.a?, self.b?);
        if a == 0.0 {
            None
        } else {
            Some((b - a) / a * 100.0)
        }
    }

    /// True when A and B agree exactly (including both-absent).
    pub fn is_zero(&self) -> bool {
        self.a == self.b
    }
}

/// A differential report comparing two metrics dumps (`gnna-report
/// --diff A B`): per-section deltas for cycles, stalls, link traffic, and
/// energy, plus the metric names present in only one of the two dumps.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Display label for run A (usually the file name).
    pub label_a: String,
    /// Display label for run B.
    pub label_b: String,
    /// System-level rows (cycles, clocks, energy total).
    pub system: Vec<MetricDelta>,
    /// Aggregate stall cycles by cause (union of both runs' causes).
    pub stalls: Vec<MetricDelta>,
    /// Per-link busy cycles, sorted by |Δ| descending.
    pub links: Vec<MetricDelta>,
    /// Energy rows: module aggregates and per-layer totals.
    pub energy: Vec<MetricDelta>,
    /// Fault-counter rows (`{site}.{counter}`), union of both runs.
    pub resilience: Vec<MetricDelta>,
    /// Metric names present in A's dump only.
    pub only_a: Vec<String>,
    /// Metric names present in B's dump only.
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// Build the differential report from two parsed metrics snapshots.
    pub fn build(a: &MetricsSnapshot, b: &MetricsSnapshot, label_a: &str, label_b: &str) -> Self {
        let ra = BottleneckReport::build(a, None);
        let rb = BottleneckReport::build(b, None);
        let mut d = DiffReport {
            label_a: label_a.to_string(),
            label_b: label_b.to_string(),
            ..Default::default()
        };

        // System rows.
        let num = |v: u64| Some(v as f64);
        d.system.push(MetricDelta::new(
            "total_cycles",
            num(ra.total_cycles),
            num(rb.total_cycles),
        ));
        d.system.push(MetricDelta::new(
            "config_cycles",
            num(ra.config_cycles),
            num(rb.config_cycles),
        ));
        d.system.push(MetricDelta::new(
            "core_cycles",
            num(ra.core_cycles()),
            num(rb.core_cycles()),
        ));
        d.system.push(MetricDelta::new(
            "tiles",
            Some(ra.tiles.len() as f64),
            Some(rb.tiles.len() as f64),
        ));
        d.system.push(MetricDelta::new(
            "energy_total_pj",
            ra.energy.as_ref().map(|e| e.total_pj as f64),
            rb.energy.as_ref().map(|e| e.total_pj as f64),
        ));

        // Stall causes: union of both runs' aggregate cause totals.
        let sa: BTreeMap<&str, u64> = ra
            .stall_totals
            .iter()
            .map(|(c, v)| (c.as_str(), *v))
            .collect();
        let sb: BTreeMap<&str, u64> = rb
            .stall_totals
            .iter()
            .map(|(c, v)| (c.as_str(), *v))
            .collect();
        let causes: std::collections::BTreeSet<&str> =
            sa.keys().chain(sb.keys()).copied().collect();
        for cause in causes {
            d.stalls.push(MetricDelta::new(
                cause,
                sa.get(cause).map(|v| *v as f64),
                sb.get(cause).map(|v| *v as f64),
            ));
        }
        d.stalls.sort_by(delta_order);

        // Links: union keyed by "(x,y) D".
        let la: BTreeMap<String, u64> = ra
            .links
            .iter()
            .map(|l| (format!("({},{}) {}", l.x, l.y, l.dir), l.busy))
            .collect();
        let lb: BTreeMap<String, u64> = rb
            .links
            .iter()
            .map(|l| (format!("({},{}) {}", l.x, l.y, l.dir), l.busy))
            .collect();
        let keys: std::collections::BTreeSet<&String> = la.keys().chain(lb.keys()).collect();
        for k in keys {
            d.links.push(MetricDelta::new(
                k.clone(),
                la.get(k).map(|v| *v as f64),
                lb.get(k).map(|v| *v as f64),
            ));
        }
        d.links.sort_by(delta_order);

        // Energy: module aggregates, then per-layer rows.
        let ea: BTreeMap<String, u64> = energy_rows(&ra.energy);
        let eb: BTreeMap<String, u64> = energy_rows(&rb.energy);
        let keys: std::collections::BTreeSet<&String> = ea.keys().chain(eb.keys()).collect();
        for k in keys {
            d.energy.push(MetricDelta::new(
                k.clone(),
                ea.get(k).map(|v| *v as f64),
                eb.get(k).map(|v| *v as f64),
            ));
        }
        d.energy.sort_by(delta_order);

        // Resilience: union of both runs' per-site fault counters.
        let fa = fault_rows(&ra.resilience);
        let fb = fault_rows(&rb.resilience);
        let keys: std::collections::BTreeSet<&String> = fa.keys().chain(fb.keys()).collect();
        for k in keys {
            d.resilience.push(MetricDelta::new(
                k.clone(),
                fa.get(k).map(|v| *v as f64),
                fb.get(k).map(|v| *v as f64),
            ));
        }
        d.resilience.sort_by(delta_order);

        // Coverage: raw metric names present in exactly one dump.
        d.only_a = a
            .names()
            .filter(|n| b.get_value(n).is_none())
            .map(str::to_string)
            .collect();
        d.only_b = b
            .names()
            .filter(|n| a.get_value(n).is_none())
            .map(str::to_string)
            .collect();
        d
    }

    /// True when every compared row is identical and both dumps carry
    /// exactly the same metric names (the self-diff case).
    pub fn is_zero(&self) -> bool {
        self.only_a.is_empty()
            && self.only_b.is_empty()
            && [
                &self.system,
                &self.stalls,
                &self.links,
                &self.energy,
                &self.resilience,
            ]
            .iter()
            .all(|rows| rows.iter().all(MetricDelta::is_zero))
    }

    /// Render the differential report as markdown.
    pub fn to_markdown(&self, top_k: usize) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "# gnna differential report\n");
        let _ = writeln!(
            o,
            "Comparing **A** = `{}` → **B** = `{}`. Δ = B − A.\n",
            self.label_a, self.label_b
        );
        if self.is_zero() {
            let _ = writeln!(o, "_The two runs are identical (all deltas zero)._\n");
        }
        let section = |o: &mut String, title: &str, rows: &[MetricDelta], limit: usize| {
            if rows.is_empty() {
                return;
            }
            let _ = writeln!(o, "## {title}\n");
            let _ = writeln!(o, "| metric | A | B | Δ | Δ% |");
            let _ = writeln!(o, "|---|---|---|---|---|");
            for r in rows.iter().take(limit) {
                let _ = writeln!(
                    o,
                    "| {} | {} | {} | {} | {} |",
                    r.name,
                    fmt_opt(r.a),
                    fmt_opt(r.b),
                    fmt_signed(r.delta()),
                    fmt_pct(r.pct())
                );
            }
            if rows.len() > limit {
                let _ = writeln!(o, "| … {} more | | | | |", rows.len() - limit);
            }
            o.push('\n');
        };
        section(&mut o, "System", &self.system, usize::MAX);
        section(&mut o, "Stall cycles by cause", &self.stalls, usize::MAX);
        section(&mut o, "NoC link busy cycles", &self.links, top_k);
        section(&mut o, "Energy (pJ)", &self.energy, usize::MAX);
        section(
            &mut o,
            "Resilience fault counters",
            &self.resilience,
            usize::MAX,
        );
        if !self.only_a.is_empty() || !self.only_b.is_empty() {
            let _ = writeln!(o, "## Coverage\n");
            for (label, names) in [("A", &self.only_a), ("B", &self.only_b)] {
                if names.is_empty() {
                    continue;
                }
                let shown: Vec<&str> = names.iter().map(String::as_str).take(top_k).collect();
                let more = if names.len() > shown.len() {
                    format!(" … and {} more", names.len() - shown.len())
                } else {
                    String::new()
                };
                let _ = writeln!(
                    o,
                    "- only in {label} ({} metrics): `{}`{more}",
                    names.len(),
                    shown.join("`, `")
                );
            }
        }
        o
    }

    /// Render the differential report as flat CSV
    /// (`section,metric,a,b,delta` rows).
    pub fn to_csv(&self) -> String {
        let mut o = String::from("section,metric,a,b,delta\n");
        let mut rows = |section: &str, rows: &[MetricDelta]| {
            for r in rows {
                let _ = writeln!(
                    o,
                    "{section},{},{},{},{}",
                    r.name.replace(',', ";"),
                    fmt_opt(r.a),
                    fmt_opt(r.b),
                    fmt_opt(r.delta())
                );
            }
        };
        rows("system", &self.system);
        rows("stalls", &self.stalls);
        rows("noc.link", &self.links);
        rows("energy", &self.energy);
        rows("resilience", &self.resilience);
        for n in &self.only_a {
            let _ = writeln!(o, "coverage,only_a.{},,,", n.replace(',', ";"));
        }
        for n in &self.only_b {
            let _ = writeln!(o, "coverage,only_b.{},,,", n.replace(',', ";"));
        }
        o
    }
}

/// Sort rows by |Δ| descending, missing-side rows last, then by name.
fn delta_order(x: &MetricDelta, y: &MetricDelta) -> std::cmp::Ordering {
    let mag = |r: &MetricDelta| r.delta().map(f64::abs);
    match (mag(x), mag(y)) {
        (Some(a), Some(b)) => b.partial_cmp(&a).unwrap_or(std::cmp::Ordering::Equal),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    }
    .then_with(|| x.name.cmp(&y.name))
}

/// Flatten per-site fault counters into named integer rows.
fn fault_rows(resilience: &[(String, SiteFaults)]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for (site, f) in resilience {
        for (counter, v) in [
            ("injected", f.injected),
            ("corrected", f.corrected),
            ("retried", f.retried),
            ("unrecoverable", f.unrecoverable),
            ("corrupted", f.corrupted),
            ("dropped", f.dropped),
            ("retry_cycles", f.retry_cycles),
        ] {
            m.insert(format!("{site}.{counter}"), v);
        }
    }
    m
}

/// Flatten an optional energy breakdown into named integer-pJ rows.
fn energy_rows(e: &Option<EnergyBreakdown>) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    if let Some(e) = e {
        m.insert("total".to_string(), e.total_pj);
        for (module, pj) in &e.modules {
            m.insert(format!("module.{module}"), *pj);
        }
        for (k, pj) in e.layers.iter().enumerate() {
            m.insert(format!("layer{k}"), *pj);
        }
    }
    m
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.3}"),
    }
}

fn fmt_signed(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(v) if v > 0.0 => format!("+{}", fmt_opt(Some(v))),
        Some(v) => fmt_opt(Some(v)),
    }
}

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        None => "—".to_string(),
        Some(v) if v > 0.0 => format!("+{v:.1}%"),
        Some(v) => format!("{v:.1}%"),
    }
}

// ---------------------------------------------------------------------------
// Fault campaigns (`gnna-campaign` JSONL → `## Fault campaigns` section)
// ---------------------------------------------------------------------------

/// One parsed `gnna-campaign` JSONL record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignRecord {
    /// Cell index in the canonical grid order.
    pub cell: u64,
    /// Model family name (`GCN`, `GAT`, `MPNN`, `PGNN`).
    pub model: String,
    /// Input dataset name.
    pub input: String,
    /// Protection mode (`protected`, `passthrough`, `degraded`).
    pub mode: String,
    /// Per-event fault rate swept by the campaign.
    pub rate: f64,
    /// Fault-plan seed.
    pub seed: u64,
    /// `"ok"` or `"unrecoverable"`.
    pub status: String,
    /// Faulting site for unrecoverable cells (empty otherwise).
    pub site: String,
    /// End-to-end NoC-clock cycles of the run (0 if unrecoverable).
    pub total_cycles: u64,
    /// Total injected faults across all sites.
    pub injected: u64,
    /// Silent data corruptions (pass-through deliveries).
    pub sdc: u64,
    /// Memory-site injections / SDCs.
    pub mem_injected: u64,
    /// Memory-site SDCs.
    pub mem_sdc: u64,
    /// NoC-site injections.
    pub noc_injected: u64,
    /// NoC-site SDCs.
    pub noc_sdc: u64,
    /// Dead tiles configured for the cell.
    pub dead_tiles: u64,
    /// Dead mesh links configured for the cell.
    pub dead_links: u64,
    /// Vertices remapped off dead tiles.
    pub remapped_vertices: u64,
    /// Output rows graded by the accuracy harness.
    pub rows: u64,
    /// Rows whose top-1 label flipped vs the functional reference.
    pub label_flips: u64,
    /// Non-finite output elements.
    pub nonfinite: u64,
    /// Maximum per-element relative error.
    pub max_rel_err: f64,
    /// Mean per-element relative error.
    pub mean_rel_err: f64,
    /// Selective protection domain (`ecc/crc` label; empty for the
    /// fully protected default, which the runner omits from the JSONL).
    pub domain: String,
    /// Unit of the `rate` field (empty for per-event probabilities;
    /// `"fit"` for physically calibrated sweeps).
    pub rate_unit: String,
    /// Checkpoints taken under rollback recovery.
    pub checkpoints: u64,
    /// Rollbacks performed under rollback recovery.
    pub rollbacks: u64,
    /// Cycles discarded and re-executed by rollbacks.
    pub replayed_cycles: u64,
    /// Checkpoint/rollback traffic energy in integer picojoules.
    pub checkpoint_pj: u64,
}

impl CampaignRecord {
    /// `model:input` benchmark label.
    pub fn benchmark(&self) -> String {
        format!("{}:{}", self.model, self.input)
    }

    /// Mode label with the protection domain folded in (`passthrough`,
    /// or `passthrough[weights/all]` for a non-default domain), so
    /// domain sweeps don't collapse into one aggregation group.
    pub fn mode_label(&self) -> String {
        if self.domain.is_empty() {
            self.mode.clone()
        } else {
            format!("{}[{}]", self.mode, self.domain)
        }
    }

    /// Fraction of graded rows whose top-1 label flipped.
    pub fn flip_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.label_flips as f64 / self.rows as f64
        }
    }
}

/// Parse a `gnna-campaign` JSONL file into records (one per line).
///
/// # Errors
///
/// Returns a `"line N: …"` message for unparsable lines or lines missing
/// the mandatory identification fields.
pub fn parse_campaign_jsonl(text: &str) -> Result<Vec<CampaignRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing string field {k}", i + 1))
        };
        let u64_field = |k: &str| doc.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let f64_field = |k: &str| doc.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let rate = doc
            .get("rate")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {}: missing number field rate", i + 1))?;
        out.push(CampaignRecord {
            cell: u64_field("cell"),
            model: str_field("model")?,
            input: str_field("input")?,
            mode: str_field("mode")?,
            rate,
            seed: u64_field("seed"),
            status: str_field("status")?,
            site: str_field("site").unwrap_or_default(),
            total_cycles: u64_field("total_cycles"),
            injected: u64_field("injected"),
            sdc: u64_field("sdc"),
            mem_injected: u64_field("mem_injected"),
            mem_sdc: u64_field("mem_sdc"),
            noc_injected: u64_field("noc_injected"),
            noc_sdc: u64_field("noc_sdc"),
            dead_tiles: u64_field("dead_tiles"),
            dead_links: u64_field("dead_links"),
            remapped_vertices: u64_field("remapped_vertices"),
            rows: u64_field("rows"),
            label_flips: u64_field("label_flips"),
            nonfinite: u64_field("nonfinite"),
            max_rel_err: f64_field("max_rel_err"),
            mean_rel_err: f64_field("mean_rel_err"),
            domain: str_field("domain").unwrap_or_default(),
            rate_unit: str_field("rate_unit").unwrap_or_default(),
            checkpoints: u64_field("checkpoints"),
            rollbacks: u64_field("rollbacks"),
            replayed_cycles: u64_field("replayed_cycles"),
            checkpoint_pj: u64_field("checkpoint_pj"),
        });
    }
    Ok(out)
}

/// One row of the accuracy-vs-rate table: a `(benchmark, mode, rate)`
/// group averaged over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// `model:input` label.
    pub benchmark: String,
    /// Protection mode.
    pub mode: String,
    /// Fault rate.
    pub rate: f64,
    /// Seeds aggregated into this row.
    pub cells: u64,
    /// Cells that died on an unrecoverable fault.
    pub unrecoverable: u64,
    /// Mean label-flip rate over completed cells.
    pub flip_rate: f64,
    /// Mean of the cells' mean relative errors.
    pub mean_rel_err: f64,
    /// Worst max relative error over completed cells.
    pub max_rel_err: f64,
    /// Mean non-finite output elements per completed cell.
    pub nonfinite: f64,
}

/// One row of the degraded-mode slowdown table.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownRow {
    /// `model:input` label.
    pub benchmark: String,
    /// Fault rate.
    pub rate: f64,
    /// Mean degraded-over-protected cycle ratio across matched seeds.
    pub slowdown: f64,
    /// Seed pairs matched.
    pub pairs: u64,
    /// Remapped vertices (identical across seeds by construction).
    pub remapped_vertices: u64,
    /// Dead tiles in the degraded cells.
    pub dead_tiles: u64,
    /// Dead links in the degraded cells.
    pub dead_links: u64,
}

/// One row of the recovery-cost table: rollback-mode cells of a
/// `(benchmark, rate)` group summed over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// `model:input` label.
    pub benchmark: String,
    /// Fault rate.
    pub rate: f64,
    /// Rollback-mode cells in the group.
    pub cells: u64,
    /// Cells that exhausted the rollback budget and died anyway.
    pub unrecoverable: u64,
    /// Checkpoints taken across the group.
    pub checkpoints: u64,
    /// Rollbacks performed across the group.
    pub rollbacks: u64,
    /// Cycles discarded and re-executed across the group.
    pub replayed_cycles: u64,
    /// Checkpoint/rollback traffic energy across the group, pJ.
    pub checkpoint_pj: u64,
}

/// Aggregated view of a campaign JSONL file, ready to render as the
/// `## Fault campaigns` report section.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Every parsed record, in file order.
    pub records: Vec<CampaignRecord>,
    /// Accuracy-vs-rate rows in `(benchmark, mode, rate)` order.
    pub accuracy: Vec<AccuracyRow>,
    /// Degraded-vs-protected slowdown rows in `(benchmark, rate)` order.
    pub slowdowns: Vec<SlowdownRow>,
    /// Per-site `(injected, sdc)` totals over pass-through cells, in
    /// site order (`mem`, `noc`).
    pub site_sdc: Vec<(String, u64, u64)>,
    /// Recovery-cost rows over rollback-mode cells, in
    /// `(benchmark, rate)` order (empty when the campaign swept no
    /// rollback cells).
    pub recovery: Vec<RecoveryRow>,
}

/// Sort key for a non-negative f64 (rates are validated into [0, 1]).
fn rate_key(rate: f64) -> u64 {
    rate.to_bits()
}

impl CampaignReport {
    /// Aggregates parsed records into the report tables.
    pub fn build(records: Vec<CampaignRecord>) -> Self {
        // (benchmark, mode, rate) → member records.
        let mut groups: BTreeMap<(String, String, u64), Vec<&CampaignRecord>> = BTreeMap::new();
        for r in &records {
            groups
                .entry((r.benchmark(), r.mode_label(), rate_key(r.rate)))
                .or_default()
                .push(r);
        }
        let mut accuracy = Vec::new();
        for ((benchmark, mode, rate_bits), members) in &groups {
            let completed: Vec<_> = members.iter().filter(|r| r.status == "ok").collect();
            let n = completed.len().max(1) as f64;
            accuracy.push(AccuracyRow {
                benchmark: benchmark.clone(),
                mode: mode.clone(),
                rate: f64::from_bits(*rate_bits),
                cells: members.len() as u64,
                unrecoverable: (members.len() - completed.len()) as u64,
                flip_rate: completed.iter().map(|r| r.flip_rate()).sum::<f64>() / n,
                mean_rel_err: completed.iter().map(|r| r.mean_rel_err).sum::<f64>() / n,
                max_rel_err: completed.iter().map(|r| r.max_rel_err).fold(0.0, f64::max),
                nonfinite: completed.iter().map(|r| r.nonfinite as f64).sum::<f64>() / n,
            });
        }

        // Degraded cells matched against the protected cell of the same
        // (benchmark, rate, seed).
        let mut protected: BTreeMap<(String, u64, u64), u64> = BTreeMap::new();
        for r in &records {
            if r.mode == "protected" && r.status == "ok" && r.total_cycles > 0 {
                protected.insert((r.benchmark(), rate_key(r.rate), r.seed), r.total_cycles);
            }
        }
        #[derive(Default)]
        struct PairAcc {
            ratio_sum: f64,
            pairs: u64,
            remapped: u64,
            tiles: u64,
            links: u64,
        }
        let mut pairs: BTreeMap<(String, u64), PairAcc> = BTreeMap::new();
        for r in &records {
            if r.mode != "degraded" || r.status != "ok" {
                continue;
            }
            let Some(&base) = protected.get(&(r.benchmark(), rate_key(r.rate), r.seed)) else {
                continue;
            };
            let e = pairs.entry((r.benchmark(), rate_key(r.rate))).or_default();
            e.ratio_sum += r.total_cycles as f64 / base as f64;
            e.pairs += 1;
            e.remapped = r.remapped_vertices;
            e.tiles = r.dead_tiles;
            e.links = r.dead_links;
        }
        let slowdowns = pairs
            .into_iter()
            .map(|((benchmark, rate_bits), acc)| SlowdownRow {
                benchmark,
                rate: f64::from_bits(rate_bits),
                slowdown: acc.ratio_sum / acc.pairs as f64,
                pairs: acc.pairs,
                remapped_vertices: acc.remapped,
                dead_tiles: acc.tiles,
                dead_links: acc.links,
            })
            .collect();

        // SDC rate per site over pass-through cells (protection disabled;
        // the other modes catch these by construction).
        let mut mem = (0u64, 0u64);
        let mut noc = (0u64, 0u64);
        for r in &records {
            if r.mode != "passthrough" {
                continue;
            }
            mem.0 += r.mem_injected;
            mem.1 += r.mem_sdc;
            noc.0 += r.noc_injected;
            noc.1 += r.noc_sdc;
        }
        let site_sdc = vec![
            ("mem".to_string(), mem.0, mem.1),
            ("noc".to_string(), noc.0, noc.1),
        ];

        // Recovery cost over rollback cells, summed per (benchmark,
        // rate): how many rollbacks the group paid, how many cycles it
        // replayed, and what the checkpoint traffic cost in energy.
        #[derive(Default)]
        struct RecAcc {
            cells: u64,
            unrecoverable: u64,
            checkpoints: u64,
            rollbacks: u64,
            replayed_cycles: u64,
            checkpoint_pj: u64,
        }
        let mut rec_groups: BTreeMap<(String, u64), RecAcc> = BTreeMap::new();
        for r in &records {
            if r.mode != "rollback" {
                continue;
            }
            let e = rec_groups
                .entry((r.benchmark(), rate_key(r.rate)))
                .or_default();
            e.cells += 1;
            e.unrecoverable += u64::from(r.status != "ok");
            e.checkpoints += r.checkpoints;
            e.rollbacks += r.rollbacks;
            e.replayed_cycles += r.replayed_cycles;
            e.checkpoint_pj += r.checkpoint_pj;
        }
        let recovery = rec_groups
            .into_iter()
            .map(|((benchmark, rate_bits), acc)| RecoveryRow {
                benchmark,
                rate: f64::from_bits(rate_bits),
                cells: acc.cells,
                unrecoverable: acc.unrecoverable,
                checkpoints: acc.checkpoints,
                rollbacks: acc.rollbacks,
                replayed_cycles: acc.replayed_cycles,
                checkpoint_pj: acc.checkpoint_pj,
            })
            .collect();

        Self {
            records,
            accuracy,
            slowdowns,
            site_sdc,
            recovery,
        }
    }

    /// Label for the swept-rate axis: physically calibrated campaigns
    /// sweep FIT (failures per 10⁹ device-hours), legacy ones sweep raw
    /// per-event probabilities.
    pub fn rate_label(&self) -> &'static str {
        if self.records.iter().any(|r| r.rate_unit == "fit") {
            "rate (FIT)"
        } else {
            "rate"
        }
    }

    /// ASCII flip-rate-vs-rate curve for one mode, one line per swept
    /// rate, averaged over benchmarks and seeds. Empty when the mode has
    /// no completed cells.
    pub fn ascii_curve(&self, mode: &str) -> String {
        const WIDTH: usize = 40;
        let mut by_rate: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
        for row in self.accuracy.iter().filter(|r| r.mode == mode) {
            let e = by_rate.entry(rate_key(row.rate)).or_insert((0.0, 0));
            e.0 += row.flip_rate;
            e.1 += 1;
        }
        if by_rate.is_empty() {
            return String::new();
        }
        let points: Vec<(f64, f64)> = by_rate
            .into_iter()
            .map(|(bits, (sum, n))| (f64::from_bits(bits), sum / n as f64))
            .collect();
        let peak = points.iter().map(|&(_, f)| f).fold(0.0, f64::max);
        let axis = if self.rate_label() == "rate (FIT)" {
            "fault rate (FIT)"
        } else {
            "fault rate"
        };
        let mut o = String::new();
        let _ = writeln!(o, "label-flip rate vs {axis} ({mode})");
        for (rate, flip) in points {
            let w = if peak > 0.0 {
                ((flip / peak) * WIDTH as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                o,
                "  {:<9} |{:<width$}| {:.1}%",
                json::number(rate),
                "#".repeat(w),
                flip * 100.0,
                width = WIDTH
            );
        }
        o
    }

    /// Render the `## Fault campaigns` markdown section.
    pub fn to_markdown(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "## Fault campaigns\n");
        let _ = writeln!(
            o,
            "{} cells ({} unrecoverable).\n",
            self.records.len(),
            self.records.iter().filter(|r| r.status != "ok").count()
        );

        let _ = writeln!(o, "### Accuracy vs fault rate\n");
        let _ = writeln!(
            o,
            "| benchmark | mode | {} | cells | unrec | flip rate | mean rel err | max rel err | non-finite |",
            self.rate_label()
        );
        let _ = writeln!(o, "|---|---|---|---|---|---|---|---|---|");
        for r in &self.accuracy {
            let _ = writeln!(
                o,
                "| {} | {} | {} | {} | {} | {:.2}% | {:.3e} | {:.3e} | {:.1} |",
                r.benchmark,
                r.mode,
                json::number(r.rate),
                r.cells,
                r.unrecoverable,
                r.flip_rate * 100.0,
                r.mean_rel_err,
                r.max_rel_err,
                r.nonfinite
            );
        }

        for mode in ["passthrough", "protected"] {
            let curve = self.ascii_curve(mode);
            if !curve.is_empty() {
                let _ = writeln!(o, "\n```\n{curve}```");
            }
        }

        let _ = writeln!(o, "\n### Degraded-mode slowdown\n");
        if self.slowdowns.is_empty() {
            let _ = writeln!(
                o,
                "_No degraded/protected cell pairs in this campaign (sweep \
                 both modes at the same rates and seeds to populate this \
                 table)._"
            );
        } else {
            let _ = writeln!(
                o,
                "| benchmark | rate | slowdown | pairs | dead tiles | dead links | remapped vertices |"
            );
            let _ = writeln!(o, "|---|---|---|---|---|---|---|");
            for s in &self.slowdowns {
                let _ = writeln!(
                    o,
                    "| {} | {} | {:.3}× | {} | {} | {} | {} |",
                    s.benchmark,
                    json::number(s.rate),
                    s.slowdown,
                    s.pairs,
                    s.dead_tiles,
                    s.dead_links,
                    s.remapped_vertices
                );
            }
        }

        let _ = writeln!(o, "\n### SDC rate per site (pass-through cells)\n");
        let _ = writeln!(o, "| site | injected | sdc | sdc rate |");
        let _ = writeln!(o, "|---|---|---|---|");
        for (site, injected, sdc) in &self.site_sdc {
            let rate = if *injected == 0 {
                0.0
            } else {
                100.0 * *sdc as f64 / *injected as f64
            };
            let _ = writeln!(o, "| {site} | {injected} | {sdc} | {rate:.1}% |");
        }

        if !self.recovery.is_empty() {
            let _ = writeln!(o, "\n### Recovery cost (rollback cells)\n");
            let _ = writeln!(
                o,
                "| benchmark | {} | cells | unrec | checkpoints | rollbacks | replayed cycles | checkpoint pJ |",
                self.rate_label()
            );
            let _ = writeln!(o, "|---|---|---|---|---|---|---|---|");
            for r in &self.recovery {
                let _ = writeln!(
                    o,
                    "| {} | {} | {} | {} | {} | {} | {} | {} |",
                    r.benchmark,
                    json::number(r.rate),
                    r.cells,
                    r.unrecoverable,
                    r.checkpoints,
                    r.rollbacks,
                    r.replayed_cycles,
                    r.checkpoint_pj
                );
            }
        }
        o
    }

    /// Render the campaign tables as CSV (accuracy rows only; the
    /// slowdown and SDC tables are derivable from the raw JSONL).
    pub fn to_csv(&self) -> String {
        let mut o = String::from(
            "section,benchmark,mode,rate,cells,unrecoverable,flip_rate,mean_rel_err,max_rel_err,nonfinite\n",
        );
        for r in &self.accuracy {
            let _ = writeln!(
                o,
                "accuracy,{},{},{},{},{},{},{},{},{}",
                r.benchmark,
                r.mode,
                json::number(r.rate),
                r.cells,
                r.unrecoverable,
                json::number(r.flip_rate),
                json::number(r.mean_rel_err),
                json::number(r.max_rel_err),
                json::number(r.nonfinite)
            );
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics_json() -> String {
        concat!(
            "{",
            "\"system.total_cycles\":1000,",
            "\"system.config_cycles\":100,",
            "\"system.clock_divider\":2,",
            "\"system.core_clock_hz\":1200000000,",
            "\"system.noc_clock_hz\":2400000000,",
            "\"tile0.gpe.op_cycles\":200,",
            "\"tile0.gpe.switch_cycles\":50,",
            "\"tile0.gpe.idle_cycles\":150,",
            "\"tile0.gpe.stall_cycles\":100,",
            "\"tile0.agg.busy_cycles\":300,",
            "\"tile0.dna.busy_cycles\":120,",
            "\"tile0.stall.waiting_mem\":180,",
            "\"tile0.stall.dnq_full\":70,",
            "\"mem0.requests\":40,",
            "\"mem0.dram_bytes\":4096,",
            "\"mem0.efficiency\":0.8,",
            "\"noc.link.0_0.E.busy_cycles\":90,",
            "\"noc.link.1_0.W.busy_cycles\":30,",
            "\"noc.packet_latency\":{\"count\":10,\"sum\":100,\"min\":4,",
            "\"max\":30,\"mean\":10,\"p50\":8,\"p95\":25,\"p99\":29,\"p999\":30}",
            "}"
        )
        .to_string()
    }

    fn sample_metrics_with_energy() -> String {
        let base = sample_metrics_json();
        let energy = concat!(
            "\"system.energy.total_pj\":1000,",
            "\"system.energy.layer0_pj\":600,",
            "\"system.energy.layer1_pj\":400,",
            "\"tile0.energy.dna_pj\":400,",
            "\"tile0.energy.agg_pj\":150,",
            "\"tile0.energy.sram_pj\":200,",
            "\"tile0.energy.gpe_pj\":100,",
            "\"mem.energy.ctrl0_pj\":100,",
            "\"noc.energy.link.0_0.E_pj\":30,",
            "\"noc.energy.link.1_0.L_pj\":20,"
        );
        base.replacen('{', &format!("{{{energy}"), 1)
    }

    fn sample_metrics_with_faults() -> String {
        let base = sample_metrics_json();
        let faults = concat!(
            "\"tile0.fault.injected\":5,",
            "\"tile0.fault.corrected\":5,",
            "\"tile0.fault.retried\":0,",
            "\"tile0.fault.unrecoverable\":0,",
            "\"tile0.fault.corrupted\":0,",
            "\"tile0.fault.dropped\":0,",
            "\"tile0.fault.retry_cycles\":160,",
            "\"mem0.fault.injected\":8,",
            "\"mem0.fault.corrected\":6,",
            "\"mem0.fault.retried\":2,",
            "\"mem0.fault.unrecoverable\":0,",
            "\"mem0.fault.corrupted\":0,",
            "\"mem0.fault.dropped\":0,",
            "\"mem0.fault.retry_cycles\":400,",
            "\"noc.fault.injected\":4,",
            "\"noc.fault.corrected\":3,",
            "\"noc.fault.retried\":0,",
            "\"noc.fault.unrecoverable\":1,",
            "\"noc.fault.corrupted\":2,",
            "\"noc.fault.dropped\":2,",
            "\"noc.fault.retry_cycles\":28,"
        );
        base.replacen('{', &format!("{{{faults}"), 1)
    }

    #[test]
    fn resilience_section_parses_and_partitions() {
        let snap = MetricsSnapshot::parse(&sample_metrics_with_faults()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        assert_eq!(r.resilience.len(), 3, "{:?}", r.resilience);
        // Sites in sorted order: mem0, noc, tile0.
        assert_eq!(r.resilience[0].0, "mem0");
        assert_eq!(r.resilience[1].0, "noc");
        assert_eq!(r.resilience[2].0, "tile0");
        let mem = r.resilience[0].1;
        assert_eq!(mem.injected, 8);
        assert_eq!(mem.retried, 2);
        assert!(mem.partition_holds());
        let noc = r.resilience[1].1;
        assert_eq!(noc.unrecoverable, 1);
        assert_eq!(noc.dropped, 2);
        assert!(noc.partition_holds());
        let md = r.to_markdown(4);
        for needle in [
            "## Resilience",
            "| mem0 | 8 | 6 | 2 | 0 | 0 | 0 | 400 |",
            "| **total** | 17 | 14 | 2 | 1 | 2 | 2 | 588 |",
            "Partition check: injected (17) == corrected (14) + retried (2) \
             + unrecoverable (1) — holds.",
            "**1 unrecoverable fault(s)**",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        assert!(!md.contains(
            "not recorded in this metrics file \
             (fault-free"
        ));
        let csv = r.to_csv();
        assert!(csv.contains("resilience,mem0.injected,8"));
        assert!(csv.contains("resilience,noc.unrecoverable,1"));
        assert!(csv.contains("resilience,tile0.retry_cycles,160"));
    }

    #[test]
    fn resilience_partition_violation_is_flagged() {
        let text = sample_metrics_with_faults()
            .replace("\"noc.fault.corrected\":3", "\"noc.fault.corrected\":2");
        let snap = MetricsSnapshot::parse(&text).unwrap();
        let md = BottleneckReport::build(&snap, None).to_markdown(4);
        assert!(md.contains("**VIOLATED**"), "{md}");
    }

    #[test]
    fn fault_free_dump_renders_not_recorded_lines() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        assert!(r.resilience.is_empty());
        let md = r.to_markdown(4);
        // The Resilience section is always present, with an explicit
        // "not recorded" line when the family is absent.
        assert!(md.contains("## Resilience"), "{md}");
        assert!(
            md.contains("_Fault counters not recorded in this metrics file"),
            "{md}"
        );
        // Same for energy (without an `## Energy` heading, see
        // `untraced_dump_has_no_energy_section`).
        assert!(
            md.contains("_Energy attribution not recorded in this metrics file"),
            "{md}"
        );
        // No resilience rows leak into the CSV.
        assert!(!r.to_csv().contains("resilience,"));
    }

    #[test]
    fn sparse_dump_notes_missing_histograms_and_mems() {
        let snap = MetricsSnapshot::parse("{\"system.total_cycles\":10}").unwrap();
        let md = BottleneckReport::build(&snap, None).to_markdown(4);
        for needle in [
            "_Packet latency/hop histograms not recorded",
            "## Memory controllers",
            "_Memory-controller counters not recorded",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn diff_covers_resilience_rows() {
        let a = MetricsSnapshot::parse(&sample_metrics_with_faults()).unwrap();
        let text = sample_metrics_with_faults()
            .replace("\"mem0.fault.injected\":8", "\"mem0.fault.injected\":11")
            .replace("\"mem0.fault.corrected\":6", "\"mem0.fault.corrected\":9");
        let b = MetricsSnapshot::parse(&text).unwrap();
        let d = DiffReport::build(&a, &b, "A", "B");
        assert!(!d.is_zero());
        let inj = d
            .resilience
            .iter()
            .find(|r| r.name == "mem0.injected")
            .unwrap();
        assert_eq!(inj.delta(), Some(3.0));
        let md = d.to_markdown(8);
        assert!(md.contains("## Resilience fault counters"), "{md}");
        assert!(d.to_csv().contains("resilience,mem0.injected,8,11,3"));
        // Self-diff including faults stays zero.
        let d2 = DiffReport::build(&a, &a, "A", "A");
        assert!(d2.is_zero());
    }

    #[test]
    fn energy_breakdown_parses_and_conserves() {
        let snap = MetricsSnapshot::parse(&sample_metrics_with_energy()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        let e = r.energy.as_ref().expect("energy section present");
        assert_eq!(e.total_pj, 1000);
        // Module family partitions the total exactly.
        let module_sum: u64 = e.modules.iter().map(|(_, pj)| pj).sum();
        assert_eq!(module_sum, e.total_pj);
        // Layer family partitions the total exactly.
        assert_eq!(e.layers, vec![600, 400]);
        assert_eq!(e.layers.iter().sum::<u64>(), e.total_pj);
        // Modules are sorted descending; dna is the hottest site.
        assert_eq!(e.modules[0], ("dna".to_string(), 400));
        assert_eq!(e.tiles, vec![(0, 850)]);
        // Links sorted by pJ descending.
        assert_eq!(e.links[0].pj, 30);
        assert_eq!(e.links[0].dir, "E");
        let md = r.to_markdown(4);
        for needle in [
            "## Energy",
            "Total attributed energy: **1000 pJ**",
            "NoC energy hot spots",
            "Per-layer energy",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        let csv = r.to_csv();
        assert!(csv.contains("energy,total_pj,1000"));
        assert!(csv.contains("energy,module.dna_pj,400"));
        assert!(csv.contains("energy.link,0_0.E,30"));
        assert!(csv.contains("energy,layer1_pj,400"));
    }

    #[test]
    fn untraced_dump_has_no_energy_section() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        assert!(r.energy.is_none());
        assert!(!r.to_markdown(4).contains("## Energy"));
    }

    #[test]
    fn self_diff_is_all_zero() {
        let text = sample_metrics_with_energy();
        let a = MetricsSnapshot::parse(&text).unwrap();
        let b = MetricsSnapshot::parse(&text).unwrap();
        let d = DiffReport::build(&a, &b, "a.json", "b.json");
        assert!(d.is_zero(), "self-diff must be zero: {d:?}");
        let md = d.to_markdown(8);
        assert!(md.contains("identical (all deltas zero)"), "{md}");
        // Every rendered delta column is 0 or absent.
        for row in d
            .system
            .iter()
            .chain(&d.stalls)
            .chain(&d.links)
            .chain(&d.energy)
        {
            assert_eq!(row.delta().unwrap_or(0.0), 0.0, "{row:?}");
        }
    }

    #[test]
    fn diff_reports_signs_and_mismatched_keys() {
        let a = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let b = MetricsSnapshot::parse(&sample_metrics_with_energy()).unwrap();
        // Give B a different cycle count via a mutated copy.
        let text = sample_metrics_with_energy().replace(
            "\"system.total_cycles\":1000",
            "\"system.total_cycles\":900",
        );
        let b2 = MetricsSnapshot::parse(&text).unwrap();
        let d = DiffReport::build(&a, &b2, "A", "B");
        assert!(!d.is_zero());
        let total = d.system.iter().find(|r| r.name == "total_cycles").unwrap();
        assert_eq!(total.delta(), Some(-100.0));
        assert_eq!(fmt_signed(total.delta()), "-100");
        assert_eq!(fmt_pct(total.pct()), "-10.0%");
        // Energy exists only in B: the energy row has no A side, and the
        // raw counters land in only_b.
        let etotal = d.energy.iter().find(|r| r.name == "total").unwrap();
        assert_eq!(etotal.a, None);
        assert_eq!(etotal.b, Some(1000.0));
        assert!(d.only_a.is_empty());
        assert!(
            d.only_b.iter().any(|n| n == "system.energy.total_pj"),
            "{:?}",
            d.only_b
        );
        let md = d.to_markdown(8);
        for needle in ["# gnna differential report", "Δ%", "only in B", "—"] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        // Plain A vs B (cycles equal) still flags the key mismatch.
        let d2 = DiffReport::build(&a, &b, "A", "B");
        assert!(!d2.is_zero());
        assert_eq!(
            d2.system
                .iter()
                .find(|r| r.name == "total_cycles")
                .unwrap()
                .delta(),
            Some(0.0)
        );
    }

    #[test]
    fn diff_csv_is_rectangular() {
        let a = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let b = MetricsSnapshot::parse(&sample_metrics_with_energy()).unwrap();
        let d = DiffReport::build(&a, &b, "A", "B");
        let csv = d.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("section,metric,a,b,delta"));
        for l in lines {
            assert_eq!(l.split(',').count(), 5, "row {l:?}");
        }
        assert!(csv.contains("system,total_cycles,1000,1000,0"));
        assert!(csv.contains("coverage,only_b.system.energy.total_pj,,,"));
    }

    #[test]
    fn json_snapshot_builds_full_report() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        assert_eq!(r.total_cycles, 1000);
        assert_eq!(r.core_cycles(), 500);
        assert_eq!(r.tiles.len(), 1);
        assert_eq!(r.tiles[0].gpe_busy, 250);
        assert_eq!(r.tiles[0].gpe_blocked, 250);
        // Stall totals descending.
        assert_eq!(
            r.stall_totals,
            vec![
                ("waiting_mem".to_string(), 180),
                ("dnq_full".to_string(), 70)
            ]
        );
        // Hottest link first.
        assert_eq!(
            r.links[0],
            LinkLoad {
                x: 0,
                y: 0,
                dir: "E".into(),
                busy: 90
            }
        );
        assert_eq!(r.latency.unwrap().count, 10);
        assert_eq!(r.mems, vec![(0, 40, 4096, 0.8)]);
    }

    #[test]
    fn markdown_has_all_sections_and_shares_sum() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        let md = r.to_markdown(4);
        for section in [
            "## System",
            "## Module utilisation",
            "## Stall breakdown",
            "## NoC",
            "## Memory controllers",
            "waiting_mem",
            "p50 8, p95 25, p99 29, p99.9 30",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        // waiting_mem is 180/250 = 72% of blocked cycles.
        assert!(md.contains("72.0%"), "stall share missing:\n{md}");
    }

    #[test]
    fn csv_roundtrip_matches_json_parse() {
        // Parse JSON, re-render nothing: instead check CSV ingestion on a
        // registry-shaped document.
        let csv = "\
metric,kind,value,count,sum,min,max,mean,p50,p95,p99
system.total_cycles,counter,1000,,,,,,,,
system.clock_divider,counter,2,,,,,,,,
tile0.gpe.op_cycles,counter,200,,,,,,,,
noc.packet_latency,histogram,,10,100,4,30,10,8,25,29
";
        let snap = MetricsSnapshot::parse(csv).unwrap();
        assert_eq!(snap.counter("system.total_cycles"), Some(1000));
        let h = snap.histogram("noc.packet_latency").unwrap();
        assert_eq!(h.count, 10);
        assert_eq!(h.p99, 29.0);
        // Pre-p999 11-column dumps parse with the new quantile zeroed.
        assert_eq!(h.p999, 0.0);
    }

    #[test]
    fn host_profile_parses_and_renders() {
        let base = sample_metrics_json();
        let profile = concat!(
            "\"host.profile.wall_ns\":2000000000,",
            "\"host.profile.cycles_total\":1000,",
            "\"host.profile.cycles_sampled\":16,",
            "\"host.profile.sample_every\":64,",
            "\"host.profile.cycles_per_sec\":500,",
            "\"host.profile.self_ns.run\":100000000,",
            "\"host.profile.total_ns.run\":2000000000,",
            "\"host.profile.calls.run\":1,",
            "\"host.profile.self_ns.run;layer:0;cycles;gpe\":900000000,",
            "\"host.profile.total_ns.run;layer:0;cycles;gpe\":900000000,",
            "\"host.profile.calls.run;layer:0;cycles;gpe\":0,"
        );
        let text = base.replacen('{', &format!("{{{profile}"), 1);
        let snap = MetricsSnapshot::parse(&text).unwrap();
        let r = BottleneckReport::build(&snap, None);
        let hp = r.host_profile.as_ref().expect("host profile parsed");
        assert_eq!(hp.wall_ns, 2_000_000_000);
        assert_eq!(hp.cycles_total, 1000);
        assert_eq!(hp.sample_every, 64);
        assert_eq!(hp.cycles_per_sec, 500.0);
        // Sorted by self time descending: the hot gpe phase leads.
        assert_eq!(hp.phases[0].path, "run;layer:0;cycles;gpe");
        assert_eq!(hp.phases[0].self_ns, 900_000_000);
        assert_eq!(hp.phases[1].calls, 1);

        let md = r.to_markdown(4);
        assert!(md.contains("## Host profile"), "{md}");
        assert!(md.contains("**500 cycles/sec**"), "{md}");
        assert!(
            md.contains("| run;layer:0;cycles;gpe | 900.000 | 45.0% |"),
            "{md}"
        );

        let csv = r.to_csv();
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 3));
        assert!(csv.contains("host,cycles_per_sec,500.0"));
        assert!(csv.contains("host.profile,run;layer:0;cycles;gpe.self_ns,900000000"));
    }

    #[test]
    fn host_profile_table_order_is_deterministic() {
        // Three phases, two tied on self time: the table must order the
        // tie alphabetically, and CSV rows must come out path-sorted
        // regardless of self time so cross-run golden diffs don't flap.
        let base = sample_metrics_json();
        let profile = concat!(
            "\"host.profile.wall_ns\":2000000000,",
            "\"host.profile.self_ns.run;cycles;noc\":500000000,",
            "\"host.profile.self_ns.run;cycles;gpe\":500000000,",
            "\"host.profile.self_ns.run;cycles;agg\":700000000,"
        );
        let text = base.replacen('{', &format!("{{{profile}"), 1);
        let snap = MetricsSnapshot::parse(&text).unwrap();
        let r = BottleneckReport::build(&snap, None);
        let hp = r.host_profile.as_ref().unwrap();
        let order: Vec<&str> = hp.phases.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(
            order,
            [
                "run;cycles;agg", // hottest first
                "run;cycles;gpe", // 500 ms tie: alphabetical
                "run;cycles;noc",
            ]
        );

        let csv = r.to_csv();
        let rows: Vec<&str> = csv
            .lines()
            .filter(|l| l.starts_with("host.profile,"))
            .collect();
        assert_eq!(
            rows,
            [
                "host.profile,run;cycles;agg.self_ns,700000000",
                "host.profile,run;cycles;gpe.self_ns,500000000",
                "host.profile,run;cycles;noc.self_ns,500000000",
            ],
            "CSV phase rows must be path-sorted"
        );
    }

    #[test]
    fn report_without_profile_omits_the_section() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        assert!(r.host_profile.is_none());
        assert!(!r.to_markdown(4).contains("## Host profile"));
    }

    #[test]
    fn report_csv_is_rectangular() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("section,metric,value"));
        for l in lines {
            assert_eq!(l.split(',').count(), 3, "row {l:?}");
        }
        assert!(csv.contains("stalls,waiting_mem,180"));
        assert!(csv.contains("noc.link,0_0.E,90"));
    }

    #[test]
    fn heatmap_is_grid_shaped() {
        let snap = MetricsSnapshot::parse(&sample_metrics_json()).unwrap();
        let r = BottleneckReport::build(&snap, None);
        let map = r.mesh_heatmap();
        // 2 routers wide, 1 tall, plus the legend line.
        let lines: Vec<_> = map.lines().collect();
        assert_eq!(lines.len(), 2, "{map}");
        assert!(
            lines[0].contains('@'),
            "hottest router must be darkest: {map}"
        );
    }

    #[test]
    fn trace_summary_counts_phases() {
        let trace = r#"{"displayTimeUnit":"ns","traceEvents":[
            {"ph":"M","name":"process_name","pid":1,"args":{"name":"tile0 gpe"}},
            {"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"gpe"}},
            {"ph":"B","name":"dna_job","pid":1,"tid":1,"ts":10},
            {"ph":"E","name":"dna_job","pid":1,"tid":1,"ts":20},
            {"ph":"i","name":"agg_done","pid":1,"tid":1,"ts":15,"s":"t"}
        ]}"#;
        let s = parse_trace_json(trace).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.processes, 1);
        assert_eq!(s.tracks, 1);
        assert_eq!(s.span_begins.get("dna_job"), Some(&1));
        assert_eq!(s.instants.get("agg_done"), Some(&1));
        assert_eq!(s.last_ts, 20.0);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(MetricsSnapshot::parse("{oops").is_err());
        assert!(MetricsSnapshot::parse("wrong,header\n1,2").is_err());
        assert!(parse_trace_json("{\"no\":\"events\"}").is_err());
    }

    fn campaign_line(
        cell: u64,
        mode: &str,
        rate: f64,
        seed: u64,
        cycles: u64,
        flips: u64,
        sdc: u64,
    ) -> String {
        format!(
            "{{\"cell\":{cell},\"model\":\"GCN\",\"input\":\"Cora\",\
             \"config\":\"GPU iso-BW\",\"mode\":\"{mode}\",\"rate\":{rate},\
             \"seed\":{seed},\"status\":\"ok\",\"site\":\"\",\"msg\":\"\",\
             \"total_cycles\":{cycles},\"injected\":10,\"sdc\":{sdc},\
             \"mem_injected\":6,\"mem_sdc\":{sdc},\"noc_injected\":4,\
             \"noc_sdc\":0,\"dead_tiles\":0,\"dead_links\":0,\
             \"remapped_vertices\":0,\"rows\":100,\"elements\":700,\
             \"label_flips\":{flips},\"nonfinite\":0,\
             \"max_rel_err\":0.5,\"mean_rel_err\":0.01}}"
        )
    }

    #[test]
    fn campaign_jsonl_parses_and_aggregates() {
        let text = [
            campaign_line(0, "protected", 0.0, 1, 1000, 0, 0),
            campaign_line(1, "protected", 0.0, 2, 1000, 0, 0),
            campaign_line(2, "passthrough", 0.01, 1, 990, 20, 7),
            campaign_line(3, "passthrough", 0.01, 2, 990, 40, 9),
            campaign_line(4, "degraded", 0.0, 1, 1500, 0, 0),
        ]
        .join("\n");
        let records = parse_campaign_jsonl(&text).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[2].label_flips, 20);
        let report = CampaignReport::build(records);
        // (benchmark, mode, rate) groups: degraded@0, passthrough@0.01,
        // protected@0 — BTreeMap orders modes alphabetically.
        assert_eq!(report.accuracy.len(), 3);
        let pt = report
            .accuracy
            .iter()
            .find(|r| r.mode == "passthrough")
            .unwrap();
        assert_eq!(pt.cells, 2);
        assert!((pt.flip_rate - 0.3).abs() < 1e-12);
        // Degraded@0 pairs with protected@0 seed 1: 1500/1000.
        assert_eq!(report.slowdowns.len(), 1);
        assert!((report.slowdowns[0].slowdown - 1.5).abs() < 1e-12);
        // Pass-through SDC totals: mem 12 injected / 16 sdc? No — mem_sdc
        // mirrors the sdc argument (7 + 9), injected 6 per cell.
        assert_eq!(report.site_sdc[0], ("mem".to_string(), 12, 16));
        assert_eq!(report.site_sdc[1], ("noc".to_string(), 8, 0));
    }

    #[test]
    fn campaign_markdown_has_all_subsections() {
        let text = [
            campaign_line(0, "protected", 0.0, 1, 1000, 0, 0),
            campaign_line(1, "passthrough", 0.01, 1, 990, 20, 7),
            campaign_line(2, "degraded", 0.0, 1, 1500, 0, 0),
        ]
        .join("\n");
        let report = CampaignReport::build(parse_campaign_jsonl(&text).unwrap());
        let md = report.to_markdown();
        assert!(md.contains("## Fault campaigns"));
        assert!(md.contains("### Accuracy vs fault rate"));
        assert!(md.contains("### Degraded-mode slowdown"));
        assert!(md.contains("### SDC rate per site"));
        assert!(md.contains("label-flip rate vs fault rate (passthrough)"));
        assert!(md.contains("1.500×"));
        let csv = report.to_csv();
        assert!(csv.starts_with("section,benchmark,mode,rate"));
        assert!(csv.contains("accuracy,GCN:Cora,passthrough,0.01"));
    }

    #[test]
    fn campaign_recovery_cells_feed_the_recovery_table() {
        // A rollback cell carries the conditional extension keys; a
        // legacy line omits them and parses with zero defaults.
        let rollback = "{\"cell\":0,\"model\":\"GCN\",\"input\":\"Cora\",\
             \"config\":\"GPU iso-BW\",\"mode\":\"rollback\",\"rate\":1000,\
             \"seed\":1,\"status\":\"ok\",\"site\":\"\",\"msg\":\"\",\
             \"total_cycles\":1200,\"injected\":10,\"sdc\":0,\
             \"mem_injected\":6,\"mem_sdc\":0,\"noc_injected\":4,\
             \"noc_sdc\":0,\"dead_tiles\":0,\"dead_links\":0,\
             \"remapped_vertices\":0,\"rows\":100,\"elements\":700,\
             \"label_flips\":0,\"nonfinite\":0,\
             \"max_rel_err\":0,\"mean_rel_err\":0,\
             \"domain\":\"weights/all\",\"rate_unit\":\"fit\",\
             \"checkpoints\":3,\"rollbacks\":2,\"replayed_cycles\":400,\
             \"checkpoint_pj\":5000}";
        let text = format!("{}\n{rollback}", campaign_line(1, "protected", 0.0, 1, 1000, 0, 0));
        let records = parse_campaign_jsonl(&text).unwrap();
        assert_eq!(records[0].rollbacks, 0);
        assert_eq!(records[0].domain, "");
        assert_eq!(records[1].rollbacks, 2);
        assert_eq!(records[1].checkpoint_pj, 5000);
        assert_eq!(records[1].mode_label(), "rollback[weights/all]");

        let report = CampaignReport::build(records);
        assert_eq!(report.recovery.len(), 1);
        let r = &report.recovery[0];
        assert_eq!(r.cells, 1);
        assert_eq!(r.rollbacks, 2);
        assert_eq!(r.replayed_cycles, 400);
        assert_eq!(r.checkpoint_pj, 5000);
        let md = report.to_markdown();
        assert!(md.contains("### Recovery cost (rollback cells)"));
        assert!(md.contains("| GCN:Cora | 1000 | 1 | 0 | 3 | 2 | 400 | 5000 |"));
        // A FIT-calibrated record relabels the rate axis everywhere.
        assert!(md.contains("| benchmark | mode | rate (FIT) |"));
        // A campaign without rollback cells renders no recovery table.
        let legacy = CampaignReport::build(
            parse_campaign_jsonl(&campaign_line(0, "protected", 0.0, 1, 1000, 0, 0)).unwrap(),
        );
        assert!(legacy.recovery.is_empty());
        assert!(!legacy.to_markdown().contains("Recovery cost"));
    }

    #[test]
    fn campaign_jsonl_rejects_malformed_lines() {
        assert!(parse_campaign_jsonl("{oops").is_err());
        assert!(parse_campaign_jsonl("{\"cell\":0}")
            .unwrap_err()
            .contains("line 1"));
        // Blank lines are skipped.
        assert!(parse_campaign_jsonl("\n\n").unwrap().is_empty());
    }
}
