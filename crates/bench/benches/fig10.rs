//! Regenerates Figure 10: observed mean memory bandwidth and DNA
//! utilisation of all benchmarks in the CPU iso-bandwidth configuration
//! (2.4 GHz core clock), plus the §VI-A bandwidth-utilisation claims.
//!
//! Run with `cargo bench -p gnna-bench --bench fig10`
//! (`GNNA_SCALE=smoke` for a fast shape-only run).

use gnna_bench::{build_case, simulate, Scale};
use gnna_core::config::AcceleratorConfig;
use gnna_models::BENCHMARK_PAIRS;

fn main() {
    let scale = if std::env::var("GNNA_SCALE").as_deref() == Ok("smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    println!("# Figure 10 — CPU iso-BW configuration, 2.4 GHz core (scale {scale:?})\n");
    println!(
        "| Benchmark | Input | mean BW (GB/s) | BW util (%) | DNA util (%) | GPE util (%) | mem efficiency (%) |"
    );
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    for (model, input) in BENCHMARK_PAIRS {
        let case = match build_case(model, input, scale) {
            Ok(c) => c,
            Err(e) => {
                println!("| {model} | {input} | build failed: {e} |");
                continue;
            }
        };
        match simulate(&case, &cfg) {
            Ok(r) => println!(
                "| {model} | {input} | {:.2} | {:.1} | {:.1} | {:.1} | {:.1} |",
                r.mean_bandwidth() / 1e9,
                r.bandwidth_utilization() * 100.0,
                r.dna_utilization() * 100.0,
                r.gpe_utilization() * 100.0,
                r.mem_efficiency() * 100.0,
            ),
            Err(e) => println!("| {model} | {input} | simulation failed: {e} |"),
        }
    }
    println!("\n(paper §VI-A: GCN bandwidth utilisation 79% / 70% / 54% for Cora /");
    println!(" Citeseer / Pubmed; GAT and MPNN have the highest DNA utilisation;");
    println!(" PGNN shows very little DNA utilisation — the GPE is the bottleneck)");
}
