//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **GCN dataflow**: project-then-propagate (ours) vs
//!    propagate-then-project (moves wide raw features through the AGG).
//! 2. **Lazy DNQ switching**: the 16-idle-cycle hysteresis vs immediate
//!    switching, on the dual-queue MPNN workload.
//! 3. **GPE software threads**: the latency-hiding knob, on the
//!    traversal-bound PGNN workload.
//! 4. **Memory access granularity**: alignment-waste sensitivity.
//!
//! Runs at reduced scale (the effects are architectural, not
//! size-dependent). Run with `cargo bench -p gnna-bench --bench ablations`.

use gnna_bench::{build_case, simulate, Scale};
use gnna_core::agg::{AggFinalize, AggOp};
use gnna_core::config::AcceleratorConfig;
use gnna_core::dna::DnaKernel;
use gnna_core::layers::{CompiledProgram, Layer, VertexProgram};
use gnna_core::layout::{BufferSpec, Rows};
use gnna_core::system::System;
use gnna_graph::datasets;
use gnna_models::{Gcn, GcnNorm, ModelKind};
use gnna_tensor::ops::Activation;

/// Compiles a GCN with the *propagate-then-project* dataflow: the wide
/// raw features are mean-aggregated first, then projected.
fn compile_gcn_propagate_first(gcn: &Gcn) -> CompiledProgram {
    let mut buffers = vec![BufferSpec {
        rows: Rows::PerVertex,
        row_words: gcn.input_dim(),
    }];
    let mut layers = Vec::new();
    let mut src = 0;
    for (i, l) in gcn.layers().iter().enumerate() {
        buffers.push(BufferSpec {
            rows: Rows::PerVertex,
            row_words: l.input_dim(),
        });
        let aggregated = buffers.len() - 1;
        buffers.push(BufferSpec {
            rows: Rows::PerVertex,
            row_words: l.output_dim(),
        });
        let projected = buffers.len() - 1;
        layers.push(Layer {
            name: format!("gcn{i}.aggregate"),
            program: VertexProgram::Aggregate {
                src,
                dst: aggregated,
                include_self: true,
                op: AggOp::Sum,
                finalize: AggFinalize::DivideByCount,
                activation: Activation::None,
            },
            kernels: vec![],
            dnq_entry_words: [0, 0],
            agg_entry_words: l.input_dim(),
        });
        layers.push(Layer {
            name: format!("gcn{i}.project"),
            program: VertexProgram::Project {
                src: aggregated,
                dst: projected,
            },
            kernels: vec![DnaKernel::Linear {
                w: l.weight.clone(),
                bias: None,
                act: l.activation,
            }],
            dnq_entry_words: [l.input_dim(), 0],
            agg_entry_words: 0,
        });
        src = projected;
    }
    let p = CompiledProgram {
        buffers,
        edge_buffer: None,
        output_buffer: src,
        layers,
    };
    p.validate().expect("valid alternate dataflow");
    p
}

fn main() {
    println!("# Ablation 1 — GCN dataflow order (Cora-like, 800 nodes, 256 features)\n");
    {
        let d = datasets::cora_scaled(800, 256, 7, 42).expect("dataset");
        let inst = &d.instances[0];
        let gcn = Gcn::for_dataset(256, 16, 7, 1)
            .expect("model")
            .with_norm(GcnNorm::Mean);
        let cfg = AcceleratorConfig::cpu_iso_bandwidth();

        let forward = gnna_core::layers::compile_gcn(&gcn).expect("compile");
        let mut sys = System::new(&cfg, std::slice::from_ref(inst), forward).expect("system");
        let a = sys.run().expect("run");
        let out_a = sys.output_matrix(0).expect("out");

        let backward = compile_gcn_propagate_first(&gcn);
        let mut sys = System::new(&cfg, std::slice::from_ref(inst), backward).expect("system");
        let b = sys.run().expect("run");
        let out_b = sys.output_matrix(0).expect("out");

        let diff = out_a.max_abs_diff(&out_b).expect("same shape");
        println!("| dataflow | latency (ms) | DRAM bytes | DNA util (%) |");
        println!(
            "| project-then-propagate | {:.3} | {} | {:.1} |",
            a.latency_s() * 1e3,
            a.dram_bytes,
            a.dna_utilization() * 100.0
        );
        println!(
            "| propagate-then-project | {:.3} | {} | {:.1} |",
            b.latency_s() * 1e3,
            b.dram_bytes,
            b.dna_utilization() * 100.0
        );
        println!("(functionally identical: max output diff {diff:.2e})\n");
    }

    println!("# Ablation 2 — lazy DNQ switching hysteresis (MPNN, 20 molecules)\n");
    {
        let case = build_case(ModelKind::Mpnn, "QM9_1000", Scale::Smoke).expect("case");
        println!("| idle-switch cycles | latency (ms) | queue switches/entry proxy |");
        for cycles in [0u64, 4, 16, 64, 256] {
            let mut cfg = AcceleratorConfig::cpu_iso_bandwidth();
            cfg.dnq.idle_switch_cycles = cycles;
            match simulate(&case, &cfg) {
                Ok(r) => println!(
                    "| {cycles} | {:.3} | dna entries {} |",
                    r.latency_s() * 1e3,
                    r.dna_entries
                ),
                Err(e) => println!("| {cycles} | err: {e} |"),
            }
        }
        println!();
    }

    println!("# Ablation 3 — GPE software-thread pool (PGNN, 60 nodes)\n");
    {
        let case = build_case(ModelKind::Pgnn, "DBLP_1", Scale::Smoke).expect("case");
        println!("| threads | latency (ms) | GPE util (%) |");
        for threads in [1usize, 2, 4, 8, 16, 32, 64] {
            let mut cfg = AcceleratorConfig::cpu_iso_bandwidth();
            cfg.gpe_threads = threads;
            match simulate(&case, &cfg) {
                Ok(r) => println!(
                    "| {threads} | {:.3} | {:.1} |",
                    r.latency_s() * 1e3,
                    r.gpe_utilization() * 100.0
                ),
                Err(e) => println!("| {threads} | err: {e} |"),
            }
        }
        println!();
    }

    println!("# Ablation 4 — DRAM access granularity (GCN Cora-smoke)\n");
    {
        let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).expect("case");
        println!("| granularity (B) | latency (ms) | mem efficiency (%) |");
        for granularity in [32u64, 64, 128, 256] {
            let mut cfg = AcceleratorConfig::cpu_iso_bandwidth();
            cfg.mem.granularity = granularity;
            match simulate(&case, &cfg) {
                Ok(r) => println!(
                    "| {granularity} | {:.3} | {:.1} |",
                    r.latency_s() * 1e3,
                    r.mem_efficiency() * 100.0
                ),
                Err(e) => println!("| {granularity} | err: {e} |"),
            }
        }
    }
}
