//! Regenerates Table VII: baseline CPU/GPU inference latencies.
//!
//! The paper *measures* these on real hardware; we reproduce the table
//! two ways: (a) the measured values verbatim (the comparison target the
//! Fig 8 speedups normalise against, exactly as the paper does), and
//! (b) our analytic roofline models of the Table III systems, to show
//! the measurements are explainable from first principles.
//!
//! Run with `cargo bench -p gnna-bench --bench table7`.

use gnna_baselines::model::{cpu_latency, gpu_latency, CpuModelParams, GpuModelParams};
use gnna_baselines::table7::PAPER_TABLE_VII;
use gnna_baselines::{CPU_BASELINE, GPU_BASELINE};
use gnna_graph::datasets;
use gnna_models::workload::{gat_work, gcn_work, mpnn_work, pgnn_work};
use gnna_models::{Gat, Gcn, ModelKind, Mpnn, Pgnn};

fn main() {
    let seed = 42;
    let cpu_p = CpuModelParams::default();
    let gpu_p = GpuModelParams::default();

    println!("# Table VII — baseline inference latencies (ms)\n");
    println!("| Benchmark | Input | CPU measured | CPU modeled | GPU measured | GPU modeled |");
    for row in &PAPER_TABLE_VII {
        let work = match (row.model, row.input) {
            (ModelKind::Gcn, input) => {
                let d = match input {
                    "Cora" => datasets::cora(seed),
                    "Citeseer" => datasets::citeseer(seed),
                    _ => datasets::pubmed(seed),
                }
                .expect("dataset");
                let m =
                    Gcn::for_dataset(d.vertex_features(), 16, d.output_features, 1).expect("model");
                gcn_work(&m, &d.instances[0].graph)
            }
            (ModelKind::Gat, _) => {
                let d = datasets::cora(seed).expect("dataset");
                let m = Gat::for_dataset(d.vertex_features(), d.output_features, 1).expect("model");
                gat_work(&m, &d.instances[0].graph)
            }
            (ModelKind::Mpnn, _) => {
                let d = datasets::qm9_1000(seed).expect("dataset");
                let m = Mpnn::for_dataset_gilmer(13, 5, 64, 73, 3, 1).expect("model");
                mpnn_work(&m, &d.instances)
            }
            (ModelKind::Pgnn, _) => {
                let d = datasets::dblp_1(seed).expect("dataset");
                let m = Pgnn::deep(&[0, 1, 2, 4], 1, 16, d.output_features, 9, 1).expect("model");
                pgnn_work(&m, &d.instances[0].graph)
            }
        };
        let cpu_model = cpu_latency(&CPU_BASELINE, &cpu_p, &work);
        let gpu_model = gpu_latency(&GPU_BASELINE, &gpu_p, &work);
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.3} | {:.3} |",
            row.model,
            row.input,
            row.cpu_s * 1e3,
            cpu_model * 1e3,
            row.gpu_s * 1e3,
            gpu_model * 1e3,
        );
    }
    println!("\n(measured values are the paper's Table VII; modeled values come from the");
    println!(" analytic roofline models in gnna-baselines with one global calibration)");
}
