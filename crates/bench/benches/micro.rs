//! Criterion micro-benchmarks of the substrates: NoC router throughput,
//! sparse × dense propagation, the dataflow mapper, the aggregator, the
//! memory controller, and a functional GCN forward pass.
//!
//! Run with `cargo bench -p gnna-bench --bench micro`.

use criterion::{criterion_group, criterion_main, Criterion};
use gnna_core::agg::{AggFinalize, AggOp, Aggregator};
use gnna_core::config::AggParams;
use gnna_core::msg::Dest;
use gnna_dnn::{mapper, EyerissConfig, MatmulShape};
use gnna_graph::datasets;
use gnna_mem::{MemConfig, MemImage, MemRequest, MemoryController};
use gnna_models::{Gcn, GcnNorm};
use gnna_noc::{Address, Network, NocConfig, Packet};
use gnna_tensor::ops::Activation;
use gnna_tensor::{CsrMatrix, Matrix};
use std::hint::black_box;

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc_4x4_uniform_1k_packets", |b| {
        b.iter(|| {
            let mut net: Network<u32> = Network::new(NocConfig::default(), 4, 4, |_, _| 1);
            let mut delivered = 0u64;
            let mut next = 0u32;
            while delivered < 1000 {
                for i in 0..4 {
                    let src = Address::new(i, (next as usize) % 4, 0);
                    let dst = Address::new((i + 2) % 4, (next as usize + 1) % 4, 0);
                    let _ = net.try_inject(Packet::new(src, dst, 128, next));
                    next = next.wrapping_add(1);
                }
                net.step();
                for y in 0..4 {
                    for x in 0..4 {
                        while let Some(f) = net.eject(Address::new(x, y, 0)) {
                            if f.is_tail() {
                                delivered += 1;
                            }
                        }
                    }
                }
            }
            black_box(net.stats().flit_hops)
        })
    });
}

fn bench_spmm(c: &mut Criterion) {
    let d = datasets::cora_scaled(1000, 64, 7, 1).expect("dataset");
    let a = d.instances[0].graph.mean_adjacency().expect("operator");
    let x = d.instances[0].x.clone();
    c.bench_function("spmm_1000v_64f", |b| {
        b.iter(|| black_box(a.spmm(&x).expect("shapes")))
    });
    let dense = Matrix::from_fn(256, 256, |i, j| ((i * j) % 7) as f32);
    let sparse =
        CsrMatrix::from_dense(&dense.map(|v| if v > 4.0 { v } else { 0.0 }), 0.0).expect("csr");
    c.bench_function("csr_transpose_256", |b| {
        b.iter(|| black_box(sparse.transpose()))
    });
}

fn bench_mapper(c: &mut Criterion) {
    let cfg = EyerissConfig::default();
    c.bench_function("mapper_pubmed_adjacency_layer", |b| {
        b.iter(|| {
            black_box(mapper::map_matmul(
                &cfg,
                MatmulShape {
                    m: 19717,
                    k: 19717,
                    n: 16,
                },
            ))
        })
    });
}

fn bench_aggregator(c: &mut Criterion) {
    c.bench_function("agg_1k_contributions_16w", |b| {
        b.iter(|| {
            let mut a = Aggregator::new(AggParams::default());
            a.configure(16);
            let mut done = 0;
            let mut cycle = 0u64;
            for batch in 0..10 {
                let slot = a
                    .try_alloc(
                        100,
                        16,
                        16,
                        AggOp::Sum,
                        AggFinalize::DivideByCount,
                        Activation::Relu,
                        Dest::Mem { addr: batch * 64 },
                    )
                    .expect("slot");
                for _ in 0..100 {
                    while !a.can_ingest() {
                        if a.tick(cycle).is_some() {
                            done += 1;
                        }
                        cycle += 1;
                    }
                    a.deliver(slot, 0, 1.0, vec![1.0; 16]).expect("live slot");
                }
            }
            while done < 10 {
                if a.tick(cycle).is_some() {
                    done += 1;
                }
                cycle += 1;
            }
            black_box(cycle)
        })
    });
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("mem_controller_1k_reads", |b| {
        let mut img = MemImage::new();
        let base = img.alloc(16 * 1024);
        b.iter(|| {
            let mut ctrl = MemoryController::new(MemConfig::default());
            let mut retired = 0;
            let mut i = 0u64;
            while retired < 1000 {
                if ctrl
                    .try_push(MemRequest::read(base + (i % 1000) * 64, 64, i), 0)
                    .is_ok()
                {
                    i += 1;
                }
                if let Some(now) = ctrl.next_ready_cycle() {
                    if ctrl.pop_ready(now, &mut img).is_some() {
                        retired += 1;
                    }
                }
            }
            black_box(retired)
        })
    });
}

fn bench_gcn_forward(c: &mut Criterion) {
    let d = datasets::cora_scaled(1000, 128, 7, 1).expect("dataset");
    let inst = &d.instances[0];
    let gcn = Gcn::for_dataset(128, 16, 7, 1)
        .expect("model")
        .with_norm(GcnNorm::Mean);
    c.bench_function("gcn_forward_1000v_128f", |b| {
        b.iter(|| black_box(gcn.forward(&inst.graph, &inst.x).expect("forward")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_noc, bench_spmm, bench_mapper, bench_aggregator, bench_memory, bench_gcn_forward
}
criterion_main!(benches);
