//! Regenerates Figure 8: normalized speedups of the accelerator over the
//! CPU (iso-bandwidth), the GPU (iso-bandwidth) and the GPU (iso-FLOPS),
//! swept over the core clock {0.6, 1.2, 2.4} GHz.
//!
//! Each cell simulates the full cycle-level system on the paper-scale
//! dataset and normalises against the measured Table VII baseline,
//! exactly as the paper does. Expect several minutes of wall time at
//! paper scale; set `GNNA_SCALE=smoke` for a fast shape-only run.
//!
//! Run with `cargo bench -p gnna-bench --bench fig8`.

use gnna_bench::{build_case, simulate, speedup, Scale, CLOCK_SWEEP};
use gnna_core::config::AcceleratorConfig;
use gnna_models::BENCHMARK_PAIRS;
use std::time::Instant;

/// One Fig 8 panel: label, configuration factory, baseline column.
type Panel = (&'static str, fn() -> AcceleratorConfig, bool);

fn main() {
    let scale = if std::env::var("GNNA_SCALE").as_deref() == Ok("smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    println!("# Figure 8 — speedups over baselines (simulated / measured), scale {scale:?}\n");

    let configs: [Panel; 3] = [
        (
            "CPU iso-BW   (vs CPU)",
            AcceleratorConfig::cpu_iso_bandwidth,
            false,
        ),
        (
            "GPU iso-BW   (vs GPU)",
            AcceleratorConfig::gpu_iso_bandwidth,
            true,
        ),
        (
            "GPU iso-FLOPS(vs GPU)",
            AcceleratorConfig::gpu_iso_flops,
            true,
        ),
    ];

    for (label, mk, vs_gpu) in configs {
        println!("## {label}\n");
        println!("| Benchmark | Input | 0.6 GHz | 1.2 GHz | 2.4 GHz | latency@2.4 (ms) |");
        for (model, input) in BENCHMARK_PAIRS {
            let case = match build_case(model, input, scale) {
                Ok(c) => c,
                Err(e) => {
                    println!("| {model} | {input} | build failed: {e} |");
                    continue;
                }
            };
            let mut cells = Vec::new();
            let mut last_latency = None;
            for clock in CLOCK_SWEEP {
                let cfg = mk().with_core_clock(clock);
                let t0 = Instant::now();
                match simulate(&case, &cfg) {
                    Ok(report) => {
                        let baseline =
                            gnna_baselines::table7::measured(model, input).expect("table7 row");
                        cells.push(format!("{:.2}x", speedup(baseline, &report, vs_gpu)));
                        last_latency = Some(report.latency_s() * 1e3);
                        eprintln!(
                            "  [{label}] {model} {input} @ {:.1} GHz: {:.3} ms ({:?} wall)",
                            clock / 1e9,
                            report.latency_s() * 1e3,
                            t0.elapsed()
                        );
                    }
                    Err(e) => cells.push(format!("err: {e}")),
                }
            }
            println!(
                "| {model} | {input} | {} | {} | {} | {} |",
                cells[0],
                cells[1],
                cells[2],
                last_latency.map_or("-".into(), |l| format!("{l:.3}")),
            );
        }
        println!();
    }
    println!("(paper headline: 7.5x over the GPU and 18x over the CPU at iso-bandwidth;");
    println!(" MPNN sees the greatest speedups; PGNN sees a ~12% slowdown at 2.4 GHz;");
    println!(" GCN/GAT speedups barely change between 1.2 and 2.4 GHz — memory-bound)");
}
