//! Energy estimates for the six benchmarks (CPU iso-BW, 2.4 GHz) using
//! the first-order per-event energy model — the quantitative follow-up
//! to §II's "energy wasted on unnecessary memory accesses" motivation.
//!
//! Run with `cargo bench -p gnna-bench --bench energy`
//! (`GNNA_SCALE=smoke` for a fast pass).

use gnna_bench::{build_case, simulate, Scale};
use gnna_core::config::AcceleratorConfig;
use gnna_core::energy::EnergyModel;
use gnna_models::BENCHMARK_PAIRS;

fn main() {
    let scale = if std::env::var("GNNA_SCALE").as_deref() == Ok("smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let model = EnergyModel::default();
    println!("# Energy per inference — CPU iso-BW, 2.4 GHz (scale {scale:?})\n");
    println!(
        "| Benchmark | Input | total (uJ) | data movement (%) | mean power (W) | uJ per MMAC |"
    );
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    for (kind, input) in BENCHMARK_PAIRS {
        let case = match build_case(kind, input, scale) {
            Ok(c) => c,
            Err(e) => {
                println!("| {kind} | {input} | build failed: {e} |");
                continue;
            }
        };
        match simulate(&case, &cfg) {
            Ok(r) => {
                let e = model.estimate(&r);
                println!(
                    "| {kind} | {input} | {:.1} | {:.0} | {:.2} | {:.3} |",
                    e.total_j() * 1e6,
                    e.data_movement_fraction() * 100.0,
                    e.mean_power_w(r.latency_s()),
                    e.total_j() * 1e6 / (r.dna_macs.max(1) as f64 / 1e6),
                );
                println!("    {e}");
            }
            Err(e) => println!("| {kind} | {input} | simulation failed: {e} |"),
        }
    }
    println!("\n(per-event costs follow Horowitz ISSCC'14-style estimates; relative");
    println!(" comparisons between benchmarks and dataflows are the meaningful output)");
}
