//! Regenerates the configuration tables: Table I (DNN accelerator),
//! Table III (baseline systems), Table IV (NoC parameters), Table V
//! (dataset statistics — generated and re-measured), Table VI
//! (accelerator configurations) and the Figure 9 topologies.
//!
//! Run with `cargo bench -p gnna-bench --bench tables`.

use gnna_baselines::{CPU_BASELINE, GPU_BASELINE};
use gnna_core::config::AcceleratorConfig;
use gnna_dnn::EyerissConfig;
use gnna_graph::datasets::{all_table_v, TABLE_V};
use gnna_graph::stats::DatasetStats;
use gnna_noc::NocConfig;

fn main() {
    println!("# Table I — spatial-architecture DNN accelerator configuration\n");
    let dna = EyerissConfig::default();
    println!("{dna}");
    println!(
        "| Number of PEs | {} |\n| PE configuration | {} x {} |\n| Register File Size | {}B |\n| Global Buffer Size | {}kB |\n| Precision | {}-bit fixed point |\n",
        dna.num_pes,
        dna.pe_rows,
        dna.pe_cols,
        dna.register_file_bytes,
        dna.global_buffer_bytes / 1024,
        dna.word_bytes * 8
    );

    println!("# Table III — baseline system architecture\n");
    println!(
        "| CPU | {} ({} cores @ {:.1} GHz) |\n| Memory | {:.0} GB/s (4x DDR4-2133) |\n| GPU | {} @ {:.0} MHz |\n| GPU Memory | {:.1} GB/s GDDR5X |\n",
        CPU_BASELINE.name,
        CPU_BASELINE.cores,
        CPU_BASELINE.clock_hz / 1e9,
        CPU_BASELINE.mem_bandwidth / 1e9,
        GPU_BASELINE.name,
        GPU_BASELINE.clock_hz / 1e6,
        GPU_BASELINE.mem_bandwidth / 1e9
    );

    println!("# Table IV — Booksim NoC model parameters\n");
    let noc = NocConfig::default();
    println!(
        "| Link Delay | {} cycle |\n| Routing Delay | {} cycle |\n| Input buffers | {} flits, {}B |\n| Routing algorithm | min-routing (XY) |\n",
        noc.link_delay,
        noc.routing_delay,
        noc.input_buffer_flits,
        noc.input_buffer_bytes()
    );

    println!("# Table V — input dataset statistics (generated stand-ins, re-measured)\n");
    println!("| Dataset | Graphs | Nodes | Edges | VFeat | EFeat | OutFeat | matches spec |");
    let generated = all_table_v(42).expect("dataset generation");
    for (dataset, spec) in generated.iter().zip(&TABLE_V) {
        let stats = DatasetStats::measure(dataset);
        let diffs = stats.diff_spec(spec);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            stats.name,
            stats.graphs,
            stats.total_nodes,
            stats.total_edges,
            stats.vertex_features,
            stats.edge_features,
            stats.output_features,
            if diffs.is_empty() {
                "yes".to_string()
            } else {
                format!("NO: {diffs:?}")
            }
        );
    }
    println!();

    println!("# Table VI — GNN accelerator configurations\n");
    println!("| Configuration | Tiles | Mem. Nodes | ALUs | Mem. BW (GBps) |");
    for cfg in [
        AcceleratorConfig::cpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_flops(),
    ] {
        println!(
            "| {} | {} | {} | {} | {:.0} |",
            cfg.name,
            cfg.num_tiles(),
            cfg.num_mem_nodes(),
            cfg.total_alus(),
            cfg.total_mem_bandwidth() / 1e9
        );
    }
    println!();

    println!("# Figure 9 — topologies ( [T] tile, [M] memory node )\n");
    for cfg in [
        AcceleratorConfig::cpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_flops(),
    ] {
        println!("{}:\n{}", cfg.name, cfg.topology.render());
    }
}
