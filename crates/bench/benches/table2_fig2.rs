//! Regenerates Table II and Figure 2: GCN executing on the Eyeriss-like
//! DNN spatial accelerator (§II — "do GNNs need a new accelerator?").
//!
//! * Table II: inference latency with unlimited bandwidth and at
//!   68 GB/s, 2.4 GHz clock, for Cora / Citeseer / Pubmed.
//! * Figure 2: mean off-chip bandwidth and PE utilisation, *total* vs
//!   *useful* (useful counts only non-zero adjacency entries).
//!
//! Run with `cargo bench -p gnna-bench --bench table2_fig2`.

use gnna_dnn::gcn_analysis::analyze_gcn;
use gnna_dnn::{EyerissConfig, GcnShape};
use gnna_graph::datasets;

fn main() {
    let cfg = EyerissConfig::default();
    let bandwidth = 68e9;
    let seed = 42;

    // Paper Table II values for side-by-side comparison.
    let paper = [
        ("Cora", 0.791, 1.597),
        ("Citeseer", 1.434, 2.661),
        ("Pubmed", 22.129, 64.636),
    ];

    let graphs = [
        ("Cora", datasets::cora(seed).expect("cora")),
        ("Citeseer", datasets::citeseer(seed).expect("citeseer")),
        ("Pubmed", datasets::pubmed(seed).expect("pubmed")),
    ];

    println!("# Table II — GCN inference latency on the DNN spatial accelerator (2.4 GHz)\n");
    println!(
        "| Input Graph | Unlimited BW (ms) | 68GBps BW (ms) | paper unlimited | paper 68GBps |"
    );
    let mut reports = Vec::new();
    for ((name, dataset), (_, p_unl, p_bw)) in graphs.iter().zip(&paper) {
        let inst = &dataset.instances[0];
        let shape = GcnShape::from_graph(
            &inst.graph,
            dataset.vertex_features(),
            16,
            dataset.output_features,
        );
        let report = analyze_gcn(&cfg, &shape, bandwidth);
        println!(
            "| {name} | {:.3} | {:.3} | {p_unl:.3} | {p_bw:.3} |",
            report.latency_unlimited_s * 1e3,
            report.latency_bw_limited_s * 1e3,
        );
        reports.push((name, inst.graph.adjacency_sparsity(), report));
    }

    println!("\n# Figure 2 — off-chip bandwidth and PE utilisation (total vs useful)\n");
    println!(
        "| Input | sparsity (%) | BW total (GB/s) | BW useful (GB/s) | PE util total (%) | PE util useful (%) |"
    );
    for (name, sparsity, r) in &reports {
        println!(
            "| {name} | {:.3} | {:.1} | {:.2} | {:.1} | {:.2} |",
            sparsity * 100.0,
            r.mean_bandwidth_total / 1e9,
            r.mean_bandwidth_useful / 1e9,
            r.pe_utilization_total * 100.0,
            r.pe_utilization_useful * 100.0,
        );
    }

    println!("\n# §II claims check\n");
    for (name, _, r) in &reports {
        println!(
            "{name}: useful compute {:.2}% of total, useful traffic {:.2}% of total",
            r.useful_compute_fraction() * 100.0,
            r.useful_traffic_fraction() * 100.0
        );
    }
    println!(
        "(paper, Pubmed: \"only 1% of the memory requests and 2% of the compute are useful\")"
    );
}
