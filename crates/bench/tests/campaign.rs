//! End-to-end fault-campaign pipeline: the parallel runner's
//! determinism golden (`--threads N` byte-identical to `--threads 1`),
//! the resume-from-partial-file contract, zero-rate bit-exactness, and
//! the accuracy degradation that pass-through mode is supposed to
//! expose — all through the same library path `gnna-campaign` uses.

use gnna_bench::campaign::{self, CampaignSpec, Mode};
use gnna_bench::report::{parse_campaign_jsonl, CampaignReport};
use gnna_bench::Scale;
use gnna_core::config::AcceleratorConfig;
use gnna_models::ModelKind;

/// The CI-sized sweep: one benchmark, three rates, two seeds, all three
/// modes — 18 cells.
fn smoke_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(AcceleratorConfig::gpu_iso_bandwidth(), Scale::Smoke);
    spec.benchmarks = vec![(ModelKind::Gcn, "Cora")];
    spec.rates = vec![0.0, 0.001, 0.01];
    spec.seeds = vec![1, 2];
    spec.modes = Mode::ALL.to_vec();
    spec
}

/// Runs a campaign into an in-memory buffer.
fn run_to_string(spec: &CampaignSpec, threads: usize, start_cell: usize) -> String {
    let mut out = String::new();
    campaign::run(spec, threads, start_cell, |line| {
        out.push_str(line);
        out.push('\n');
        Ok(())
    })
    .unwrap();
    out
}

#[test]
fn threads_do_not_change_output_bytes() {
    let spec = smoke_spec();
    let serial = run_to_string(&spec, 1, 0);
    let parallel = run_to_string(&spec, 4, 0);
    assert_eq!(serial, parallel, "campaign output depends on --threads");
    assert_eq!(serial.lines().count(), spec.cells().len());
}

#[test]
fn resume_recomputes_only_the_missing_tail() {
    let spec = smoke_spec();
    let full = run_to_string(&spec, 2, 0);

    // Interrupt after 7 complete lines plus a torn partial 8th.
    let cut: usize = full
        .split_inclusive('\n')
        .take(7)
        .map(str::len)
        .sum::<usize>()
        + 20;
    let interrupted = &full[..cut];
    let (lines, prefix) = campaign::resume_point(interrupted);
    assert_eq!(lines, 7);
    assert!(prefix < interrupted.len(), "partial tail not detected");
    campaign::validate_prefix(&interrupted[..prefix], &spec.cells()).unwrap();

    // Re-run from the resume point and splice: byte-identical to the
    // uninterrupted campaign.
    let tail = run_to_string(&spec, 2, lines);
    let resumed = format!("{}{}", &interrupted[..prefix], tail);
    assert_eq!(resumed, full, "resume diverged from a fresh run");

    // The tail really did skip the finished cells.
    assert_eq!(tail.lines().count(), spec.cells().len() - 7);

    // A foreign prefix (wrong cell ids for this grid) is rejected.
    let foreign = full
        .split_inclusive('\n')
        .skip(1)
        .take(2)
        .collect::<String>();
    assert!(campaign::validate_prefix(&foreign, &spec.cells()).is_err());
}

#[test]
fn zero_rate_cells_are_bit_exact_across_modes() {
    let mut spec = smoke_spec();
    spec.rates = vec![0.0];
    spec.seeds = vec![1];
    spec.modes = vec![Mode::Protected, Mode::Passthrough];
    let records = parse_campaign_jsonl(&run_to_string(&spec, 1, 0)).unwrap();
    assert_eq!(records.len(), 2);
    let (p, pt) = (&records[0], &records[1]);
    // No faults exist at rate 0, so the protection mode is irrelevant:
    // same cycles, same accuracy, no corruption of any kind.
    assert_eq!(p.total_cycles, pt.total_cycles);
    assert_eq!(p.injected, 0);
    assert_eq!(pt.injected, 0);
    assert_eq!(pt.sdc, 0);
    assert_eq!(p.label_flips, pt.label_flips);
    assert_eq!(p.max_rel_err, pt.max_rel_err);
    assert_eq!(p.mean_rel_err, pt.mean_rel_err);
    // The zero-rate baseline is the simulator's intrinsic float error —
    // small, and identical for every mode.
    assert!(p.max_rel_err < 1e-3, "baseline error too large");
}

#[test]
fn passthrough_degrades_and_protected_does_not() {
    let mut spec = smoke_spec();
    spec.rates = vec![0.01];
    spec.seeds = vec![1];
    let records = parse_campaign_jsonl(&run_to_string(&spec, 1, 0)).unwrap();
    let by_mode = |m: &str| records.iter().find(|r| r.mode == m).unwrap();

    let protected = by_mode("protected");
    assert_eq!(protected.status, "ok");
    assert!(protected.injected > 0);
    assert_eq!(protected.sdc, 0, "protected mode leaked corruption");
    assert_eq!(protected.label_flips, 0);

    let passthrough = by_mode("passthrough");
    assert_eq!(passthrough.status, "ok");
    assert!(passthrough.sdc > 0, "no silent corruption at 1% rate");
    assert!(
        passthrough.max_rel_err > protected.max_rel_err,
        "pass-through did not degrade accuracy"
    );

    let degraded = by_mode("degraded");
    assert_eq!(degraded.status, "ok");
    assert_eq!(degraded.dead_tiles, 1);
    assert_eq!(degraded.dead_links, 1);
    assert!(
        degraded.remapped_vertices > 0,
        "dead tile's partition was not remapped"
    );
}

#[test]
fn campaign_feeds_the_report_section() {
    let spec = smoke_spec();
    let text = run_to_string(&spec, 2, 0);
    let report = CampaignReport::build(parse_campaign_jsonl(&text).unwrap());
    assert_eq!(report.records.len(), spec.cells().len());

    // Accuracy rows: one per (benchmark, mode, rate) = 1 × 3 × 3.
    assert_eq!(report.accuracy.len(), 9);

    // Degraded cells pair with protected cells at every rate.
    assert_eq!(report.slowdowns.len(), 3);
    for s in &report.slowdowns {
        assert!(s.pairs == 2, "expected both seeds paired at {}", s.rate);
        assert!(s.slowdown > 0.0);
        assert!(s.remapped_vertices > 0);
    }

    // Pass-through cells at nonzero rates produce SDCs at both sites.
    let mem = &report.site_sdc[0];
    assert!(mem.1 > 0 && mem.2 > 0, "mem site saw no SDCs: {mem:?}");

    let md = report.to_markdown();
    assert!(md.contains("## Fault campaigns"));
    assert!(md.contains("### Degraded-mode slowdown"));
    assert!(md.contains("GCN:Cora | passthrough | 0.01"));
}
