//! Command-line conformance for the bench binaries.
//!
//! Every binary in the workspace answers `--help` and `--version` with
//! exit code 0 — `--help` prints the usage text to stderr, `--version`
//! prints `<bin> <workspace version>` to stdout — and `gnna-report
//! --campaign` fails with a structured error (not a panic or an empty
//! section) on an empty or truncated sweep file.

use std::process::Command;

const VERSION: &str = env!("CARGO_PKG_VERSION");

fn bins() -> [(&'static str, &'static str); 3] {
    [
        ("gnna-sim", env!("CARGO_BIN_EXE_gnna-sim")),
        ("gnna-report", env!("CARGO_BIN_EXE_gnna-report")),
        ("gnna-campaign", env!("CARGO_BIN_EXE_gnna-campaign")),
    ]
}

fn run(exe: &str, args: &[&str]) -> std::process::Output {
    Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"))
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for (name, exe) in bins() {
        for flag in ["--help", "-h"] {
            let out = run(exe, &[flag]);
            assert!(out.status.success(), "{name} {flag} exited nonzero");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(
                err.contains(&format!("usage: {name}")),
                "{name} {flag} usage text missing: {err}"
            );
        }
    }
}

#[test]
fn version_exits_zero_and_prints_the_workspace_version() {
    for (name, exe) in bins() {
        for flag in ["--version", "-V"] {
            let out = run(exe, &[flag]);
            assert!(out.status.success(), "{name} {flag} exited nonzero");
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert_eq!(stdout, format!("{name} {VERSION}\n"), "{name} {flag}");
        }
    }
}

#[test]
fn unknown_options_exit_nonzero_with_usage() {
    for (name, exe) in bins() {
        let out = run(exe, &["--no-such-flag"]);
        assert!(!out.status.success(), "{name} accepted an unknown flag");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown option --no-such-flag"),
            "{name}: {err}"
        );
        assert!(err.contains(&format!("usage: {name}")), "{name}: {err}");
    }
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gnna-cli-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn report_rejects_an_empty_campaign_file_with_a_structured_error() {
    let path = temp_path("empty-campaign");
    std::fs::write(&path, "\n\n").unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_gnna-report"),
        &["--campaign", path.to_str().unwrap()],
    );
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success(), "empty campaign file was accepted");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "unstructured failure: {err}");
    assert!(err.contains("holds no records"), "wrong message: {err}");
    assert!(
        out.stdout.is_empty(),
        "empty campaign still produced output"
    );
}

#[test]
fn report_rejects_a_truncated_campaign_file_with_a_structured_error() {
    let path = temp_path("truncated-campaign");
    // A write cut off mid-record: the opening half of a JSON object.
    std::fs::write(&path, "{\"cell\":0,\"model\":\"GCN\",\"ra").unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_gnna-report"),
        &["--campaign", path.to_str().unwrap()],
    );
    std::fs::remove_file(&path).ok();
    assert!(
        !out.status.success(),
        "truncated campaign file was accepted"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "unstructured failure: {err}");
    assert!(
        err.contains("cannot parse campaign"),
        "wrong message: {err}"
    );
    assert!(err.contains("line 1"), "no line context: {err}");
    assert!(
        out.stdout.is_empty(),
        "truncated campaign still produced output"
    );
}

#[test]
fn report_rejects_a_missing_campaign_file_with_a_structured_error() {
    let path = temp_path("no-such-campaign");
    std::fs::remove_file(&path).ok();
    let out = run(
        env!("CARGO_BIN_EXE_gnna-report"),
        &["--campaign", path.to_str().unwrap()],
    );
    assert!(!out.status.success(), "missing campaign file was accepted");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read campaign"), "wrong message: {err}");
}
