//! End-to-end report pipeline: simulate a smoke benchmark with event
//! telemetry, serialize the metrics/trace exactly as `gnna-sim` would,
//! and check that `gnna-report`'s library path reconstructs a faithful
//! bottleneck report from the files alone.

use gnna_bench::report::{parse_trace_json, BottleneckReport, MetricsSnapshot};
use gnna_bench::{build_case, simulate_traced, simulate_traced_opts, Scale, TraceOptions};
use gnna_core::config::AcceleratorConfig;
use gnna_models::ModelKind;
use gnna_telemetry::TraceLevel;

fn traced_smoke_run() -> gnna_bench::TracedRun {
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let cfg = AcceleratorConfig::gpu_iso_bandwidth();
    simulate_traced(&case, &cfg, TraceLevel::Event).unwrap()
}

#[test]
fn report_from_simulated_metrics_reconciles() {
    let run = traced_smoke_run();
    let metrics_json = run.metrics.to_json_string();
    let trace_json = run.tracer.borrow().to_chrome_json_string();

    let snap = MetricsSnapshot::parse(&metrics_json).unwrap();
    let trace = parse_trace_json(&trace_json).unwrap();
    let report = BottleneckReport::build(&snap, Some(trace));

    // System figures match the in-memory report.
    assert_eq!(report.total_cycles, run.report.total_cycles);
    assert_eq!(report.clock_divider, run.report.clock_divider);
    assert_eq!(report.core_cycles(), run.report.core_cycles());
    assert_eq!(report.tiles.len(), run.report.num_tiles);

    // Stall causes partition blocked cycles in the file-based view too.
    for t in &report.tiles {
        let attributed: u64 = t.stalls.iter().map(|(_, v)| v).sum();
        assert_eq!(
            attributed, t.gpe_blocked,
            "tile {}: file-based stall partition broken",
            t.tile
        );
    }
    let total_blocked: u64 = report.tiles.iter().map(|t| t.gpe_blocked).sum();
    let total_stalls: u64 = report.stall_totals.iter().map(|(_, v)| v).sum();
    assert_eq!(total_stalls, total_blocked);

    // Event-level run carries link loads and non-degenerate latency.
    assert!(!report.links.is_empty(), "no per-link loads in report");
    assert!(report.links[0].busy > 0);
    let lat = report.latency.expect("latency histogram in report");
    assert!(lat.p50 > 0.0 && lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
    let hops = report.hops.expect("hop histogram in report");
    assert!(hops.min >= 1.0);

    // Trace inventory saw the simulated tracks.
    let t = report.trace.as_ref().unwrap();
    assert!(t.events > 0 && t.tracks > 0 && t.processes > 0);
    assert!(t.span_begins.contains_key("dna_job"));
}

#[test]
fn markdown_and_csv_render_from_real_run() {
    let run = traced_smoke_run();
    let snap = MetricsSnapshot::parse(&run.metrics.to_json_string()).unwrap();
    let report = BottleneckReport::build(&snap, None);

    let md = report.to_markdown(5);
    for needle in [
        "# gnna bottleneck report",
        "## Module utilisation",
        "## Stall breakdown",
        "Top 5 hottest links",
        "Router heat-map",
        "packet latency",
    ] {
        assert!(md.contains(needle), "missing {needle:?}");
    }

    let csv = report.to_csv();
    assert!(csv.lines().count() > 10);
    assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 3));
    assert!(csv.contains("system,total_cycles,"));
    assert!(csv.contains("noc,latency.p99,"));
}

#[test]
fn csv_metrics_dump_parses_identically() {
    // `gnna-sim --metrics-out x.csv` writes CSV; the report must read it.
    let run = traced_smoke_run();
    let from_json = MetricsSnapshot::parse(&run.metrics.to_json_string()).unwrap();
    let from_csv = MetricsSnapshot::parse(&run.metrics.to_csv_string()).unwrap();
    assert_eq!(from_json.len(), from_csv.len());
    assert_eq!(
        from_json.counter("system.total_cycles"),
        from_csv.counter("system.total_cycles")
    );
    let a = from_json.histogram("noc.packet_latency").unwrap();
    let b = from_csv.histogram("noc.packet_latency").unwrap();
    assert_eq!(a.count, b.count);
}

#[test]
fn flight_capacity_is_honoured() {
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    let opts = TraceOptions {
        level: TraceLevel::Event,
        flight_capacity: Some(7),
    };
    let run = simulate_traced_opts(&case, &cfg, &opts).unwrap();
    assert_eq!(run.tracer.borrow().flight_capacity(), 7);
    // The ring holds at most 7 lines (header excluded).
    let snapshot = run.tracer.borrow().flight_snapshot();
    assert!(
        snapshot.lines().count() <= 8,
        "flight ring exceeded capacity:\n{snapshot}"
    );

    // Capacity 0 disables the ring without disturbing the run.
    let opts = TraceOptions {
        level: TraceLevel::Event,
        flight_capacity: Some(0),
    };
    let run0 = simulate_traced_opts(&case, &cfg, &opts).unwrap();
    assert_eq!(run0.report.total_cycles, run.report.total_cycles);
}
