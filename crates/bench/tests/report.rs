//! End-to-end report pipeline: simulate a smoke benchmark with event
//! telemetry, serialize the metrics/trace exactly as `gnna-sim` would,
//! and check that `gnna-report`'s library path reconstructs a faithful
//! bottleneck report from the files alone.

use gnna_bench::report::{parse_trace_json, BottleneckReport, DiffReport, MetricsSnapshot};
use gnna_bench::{build_case, simulate_traced, simulate_traced_opts, Scale, TraceOptions};
use gnna_core::config::AcceleratorConfig;
use gnna_core::energy::EnergyModel;
use gnna_models::ModelKind;
use gnna_telemetry::TraceLevel;

fn traced_smoke_run() -> gnna_bench::TracedRun {
    traced_smoke_run_on(&AcceleratorConfig::gpu_iso_bandwidth())
}

fn traced_smoke_run_on(cfg: &AcceleratorConfig) -> gnna_bench::TracedRun {
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    simulate_traced(&case, cfg, TraceLevel::Event).unwrap()
}

#[test]
fn report_from_simulated_metrics_reconciles() {
    let run = traced_smoke_run();
    let metrics_json = run.metrics.to_json_string();
    let trace_json = run.tracer.borrow().to_chrome_json_string();

    let snap = MetricsSnapshot::parse(&metrics_json).unwrap();
    let trace = parse_trace_json(&trace_json).unwrap();
    let report = BottleneckReport::build(&snap, Some(trace));

    // System figures match the in-memory report.
    assert_eq!(report.total_cycles, run.report.total_cycles);
    assert_eq!(report.clock_divider, run.report.clock_divider);
    assert_eq!(report.core_cycles(), run.report.core_cycles());
    assert_eq!(report.tiles.len(), run.report.num_tiles);

    // Stall causes partition blocked cycles in the file-based view too.
    for t in &report.tiles {
        let attributed: u64 = t.stalls.iter().map(|(_, v)| v).sum();
        assert_eq!(
            attributed, t.gpe_blocked,
            "tile {}: file-based stall partition broken",
            t.tile
        );
    }
    let total_blocked: u64 = report.tiles.iter().map(|t| t.gpe_blocked).sum();
    let total_stalls: u64 = report.stall_totals.iter().map(|(_, v)| v).sum();
    assert_eq!(total_stalls, total_blocked);

    // Event-level run carries link loads and non-degenerate latency.
    assert!(!report.links.is_empty(), "no per-link loads in report");
    assert!(report.links[0].busy > 0);
    let lat = report.latency.expect("latency histogram in report");
    assert!(lat.p50 > 0.0 && lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
    let hops = report.hops.expect("hop histogram in report");
    assert!(hops.min >= 1.0);

    // Trace inventory saw the simulated tracks.
    let t = report.trace.as_ref().unwrap();
    assert!(t.events > 0 && t.tracks > 0 && t.processes > 0);
    assert!(t.span_begins.contains_key("dna_job"));
}

#[test]
fn markdown_and_csv_render_from_real_run() {
    let run = traced_smoke_run();
    let snap = MetricsSnapshot::parse(&run.metrics.to_json_string()).unwrap();
    let report = BottleneckReport::build(&snap, None);

    let md = report.to_markdown(5);
    for needle in [
        "# gnna bottleneck report",
        "## Module utilisation",
        "## Stall breakdown",
        "Top 5 hottest links",
        "Router heat-map",
        "packet latency",
    ] {
        assert!(md.contains(needle), "missing {needle:?}");
    }

    let csv = report.to_csv();
    assert!(csv.lines().count() > 10);
    assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 3));
    assert!(csv.contains("system,total_cycles,"));
    assert!(csv.contains("noc,latency.p99,"));
}

#[test]
fn csv_metrics_dump_parses_identically() {
    // `gnna-sim --metrics-out x.csv` writes CSV; the report must read it.
    let run = traced_smoke_run();
    let from_json = MetricsSnapshot::parse(&run.metrics.to_json_string()).unwrap();
    let from_csv = MetricsSnapshot::parse(&run.metrics.to_csv_string()).unwrap();
    assert_eq!(from_json.len(), from_csv.len());
    assert_eq!(
        from_json.counter("system.total_cycles"),
        from_csv.counter("system.total_cycles")
    );
    let a = from_json.histogram("noc.packet_latency").unwrap();
    let b = from_csv.histogram("noc.packet_latency").unwrap();
    assert_eq!(a.count, b.count);
}

#[test]
fn energy_section_reconciles_from_files() {
    // The file-based energy view must carry the exact conservation
    // invariant: module aggregates, per-layer counters, and the total
    // all agree with the in-memory `EnergyModel` figure, in integer pJ.
    let run = traced_smoke_run();
    let snap = MetricsSnapshot::parse(&run.metrics.to_json_string()).unwrap();
    let report = BottleneckReport::build(&snap, None);
    let e = report
        .energy
        .as_ref()
        .expect("event run has energy section");

    assert_eq!(e.total_pj, EnergyModel::default().total_pj(&run.report));
    let module_sum: u64 = e.modules.iter().map(|(_, pj)| pj).sum();
    assert_eq!(module_sum, e.total_pj, "module aggregates must conserve");
    assert_eq!(e.layers.iter().sum::<u64>(), e.total_pj);
    assert_eq!(e.layers.len(), run.report.layers.len());
    assert_eq!(e.tiles.len(), run.report.num_tiles);
    assert!(!e.links.is_empty(), "NoC link energies missing");
    assert!(e.total_pj > 0);

    let md = report.to_markdown(5);
    for needle in ["## Energy", "NoC energy hot spots", "Per-layer energy"] {
        assert!(md.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn self_diff_of_real_run_is_zero() {
    // Degenerate diff: a dump against itself must be all-zero, with no
    // mismatched keys, and say so in the rendered report.
    let run = traced_smoke_run();
    let text = run.metrics.to_json_string();
    let a = MetricsSnapshot::parse(&text).unwrap();
    let b = MetricsSnapshot::parse(&text).unwrap();
    let d = DiffReport::build(&a, &b, "a.json", "b.json");
    assert!(d.is_zero(), "self-diff must be all-zero");
    assert!(d.only_a.is_empty() && d.only_b.is_empty());
    let md = d.to_markdown(8);
    assert!(md.contains("identical (all deltas zero)"), "{md}");
    for row in d.system.iter().chain(&d.stalls).chain(&d.energy) {
        assert_eq!(row.delta(), Some(0.0), "nonzero self-delta: {row:?}");
    }
}

#[test]
fn diff_of_two_configs_has_expected_shape() {
    // 1-tile CPU-iso vs 8-tile GPU-iso on the same workload: the diff
    // must carry the sign of the real cycle/energy movement and flag the
    // counters that exist on only one side (tile1+ on the larger mesh).
    let small = traced_smoke_run_on(&AcceleratorConfig::cpu_iso_bandwidth());
    let big = traced_smoke_run();
    let a = MetricsSnapshot::parse(&small.metrics.to_json_string()).unwrap();
    let b = MetricsSnapshot::parse(&big.metrics.to_json_string()).unwrap();
    let d = DiffReport::build(&a, &b, "cpu_iso.json", "gpu_iso.json");
    assert!(!d.is_zero());

    // Cycle delta reconciles with the in-memory reports, sign included.
    let cycles = d.system.iter().find(|r| r.name == "total_cycles").unwrap();
    let expected = big.report.total_cycles as f64 - small.report.total_cycles as f64;
    assert_eq!(cycles.delta(), Some(expected));
    assert_ne!(expected, 0.0, "configs should not tie exactly");

    // Tile count delta is exactly +7 (1 → 8 tiles).
    let tiles = d.system.iter().find(|r| r.name == "tiles").unwrap();
    assert_eq!(tiles.delta(), Some(7.0));

    // Energy totals are present on both sides and reconcile exactly.
    let energy = d
        .system
        .iter()
        .find(|r| r.name == "energy_total_pj")
        .unwrap();
    assert_eq!(
        energy.a,
        Some(EnergyModel::default().total_pj(&small.report) as f64)
    );
    assert_eq!(
        energy.b,
        Some(EnergyModel::default().total_pj(&big.report) as f64)
    );

    // Mismatched keys: the 8-tile run has counters the 1-tile run lacks.
    assert!(
        d.only_b.iter().any(|n| n.starts_with("tile1.")),
        "tile1 counters should be B-only: {:?}",
        &d.only_b[..d.only_b.len().min(8)]
    );

    // Rendered output covers all four delta families.
    let md = d.to_markdown(8);
    for needle in [
        "# gnna differential report",
        "## System",
        "## Stall cycles by cause",
        "## NoC link busy cycles",
        "## Energy (pJ)",
        "## Coverage",
        "only in B",
    ] {
        assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
    }
    let csv = d.to_csv();
    assert_eq!(csv.lines().next(), Some("section,metric,a,b,delta"));
    assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 5));
}

#[test]
fn flight_capacity_is_honoured() {
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    let opts = TraceOptions {
        level: TraceLevel::Event,
        flight_capacity: Some(7),
        fault_plan: None,
        profile_sample_every: None,
    };
    let run = simulate_traced_opts(&case, &cfg, &opts).unwrap();
    assert_eq!(run.tracer.borrow().flight_capacity(), 7);
    // The ring holds at most 7 lines (header excluded).
    let snapshot = run.tracer.borrow().flight_snapshot();
    assert!(
        snapshot.lines().count() <= 8,
        "flight ring exceeded capacity:\n{snapshot}"
    );

    // Capacity 0 disables the ring without disturbing the run.
    let opts = TraceOptions {
        level: TraceLevel::Event,
        flight_capacity: Some(0),
        fault_plan: None,
        profile_sample_every: None,
    };
    let run0 = simulate_traced_opts(&case, &cfg, &opts).unwrap();
    assert_eq!(run0.report.total_cycles, run.report.total_cycles);
}
