//! Host-phase profiler integration: attaching the profiler must not
//! perturb simulation results, its cost must stay within the overhead
//! budget, and the exports must carry the per-module hot phases.

use gnna_bench::{build_case, simulate, simulate_traced_opts, Scale, TraceOptions};
use gnna_core::config::AcceleratorConfig;
use gnna_models::ModelKind;
use gnna_telemetry::TraceLevel;
use std::time::{Duration, Instant};

fn profiled_opts(sample_every: u64) -> TraceOptions {
    TraceOptions {
        level: TraceLevel::Off,
        flight_capacity: None,
        fault_plan: None,
        profile_sample_every: Some(sample_every),
    }
}

#[test]
fn profiler_does_not_perturb_the_sim_report() {
    // The zero-cost-off golden: the profiler only reads the host wall
    // clock, so the full SimReport — every counter, every layer — must
    // be identical with and without it.
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let cfg = AcceleratorConfig::gpu_iso_bandwidth();
    let plain = simulate(&case, &cfg).unwrap();
    let profiled = simulate_traced_opts(&case, &cfg, &profiled_opts(8)).unwrap();
    assert_eq!(plain, profiled.report, "profiling perturbed the simulation");
}

#[test]
fn collapsed_stack_and_metrics_carry_per_module_phases() {
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let cfg = AcceleratorConfig::gpu_iso_bandwidth();
    let run = simulate_traced_opts(&case, &cfg, &profiled_opts(4)).unwrap();
    let profiler = run.profiler.as_ref().expect("profiler attached");
    let prof = profiler.borrow();
    // The hot loop counts compute cycles only — config/barrier cycles
    // live in their own scopes — so it is bounded by the report total.
    assert!(prof.cycles_total() > 0);
    assert!(prof.cycles_total() <= run.report.total_cycles);
    assert!(prof.cycles_per_sec() > 0.0);

    // Collapsed stacks: every per-module hot phase shows up as a
    // `...;cycles;<module>` line, scope lines cover the layer tree, and
    // every line is `path count` shaped (flamegraph input).
    let collapsed = prof.collapsed();
    for phase in ["gpe", "agg", "dnq", "dna", "noc", "mem"] {
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("run;") && l.contains(&format!(";cycles;{phase} "))),
            "hot phase {phase} missing from:\n{collapsed}"
        );
    }
    assert!(
        collapsed
            .lines()
            .any(|l| l.starts_with("run;layer:") && l.contains(";config ")),
        "per-layer config scope missing from:\n{collapsed}"
    );
    for line in collapsed.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` lines");
        assert!(!path.is_empty());
        count.parse::<u64>().expect("numeric sample count");
    }

    // The metrics registry carries the same data for `gnna-report`.
    let json = run.metrics.to_json_string();
    for needle in [
        "host.profile.wall_ns",
        "host.profile.cycles_total",
        "host.profile.cycles_per_sec",
        "host.profile.self_ns.run",
    ] {
        assert!(json.contains(needle), "missing {needle}");
    }
}

#[test]
fn profiler_overhead_stays_within_budget() {
    // Sampled at the default 1-in-64 stride, profiling must cost less
    // than 10% wall clock on the smoke benchmark. Min-of-N absorbs
    // scheduler noise; the small absolute grace absorbs timer jitter on
    // a loaded CI host.
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let cfg = AcceleratorConfig::gpu_iso_bandwidth();
    let min_time = |profiled: bool| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                if profiled {
                    simulate_traced_opts(&case, &cfg, &profiled_opts(64)).unwrap();
                } else {
                    simulate(&case, &cfg).unwrap();
                }
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let baseline = min_time(false);
    let profiled = min_time(true);
    let budget = baseline.mul_f64(1.10) + Duration::from_millis(50);
    assert!(
        profiled <= budget,
        "profiled run {profiled:?} exceeds budget {budget:?} (baseline {baseline:?})"
    );
}
