//! `gnna-serve`: a batched multi-tenant GNN inference daemon.
//!
//! This crate is the ROADMAP's serving front end over the repo's two
//! execution engines — the cycle-accurate accelerator simulator
//! (`gnna-core`) and the functional reference (`gnna-models`). A
//! std-only HTTP/1.1 server accepts JSON inference jobs, coalesces
//! concurrent requests into per-accelerator-instance batches under a
//! bounded-latency flush, executes them on the shared work-stealing
//! executor ([`gnna_executor`]), and answers with output rows plus
//! per-job telemetry (cycles, energy pJ, stall summary, accuracy
//! grade).
//!
//! Layering:
//!
//! * [`http`] — request/response framing (no external deps);
//! * [`protocol`] — the JSON job schema (including `tenant` and
//!   `deadline_ms`) and bit-exact row serialization;
//! * [`queue`] — bounded per-instance batch queues with multi-tenant
//!   admission control: per-tenant token-bucket quotas, weighted
//!   deficit-round-robin dequeue, deadline-aware shedding with a
//!   pressure-derived `Retry-After`, graceful cycle→functional
//!   degradation past a watermark, and cooperative cancel;
//! * [`engine`] — batch execution: one union-graph `System` per
//!   cycle-accurate batch, reference rows for functional jobs, exact
//!   energy attribution;
//! * [`stats`] — the `/stats` surface (req/s, latency quantiles up to
//!   p99.9, batch-size histogram, queue depth, per-tenant
//!   admitted/shed/throttled/deadline-missed counters, RSS gauge) on
//!   `gnna-telemetry` metrics;
//! * [`trace`] — request-span tracing: wall-clock Chrome-trace spans
//!   (queue wait → coalesce → simulate → respond per job, plus batch
//!   spans linking their member span ids);
//! * [`server`] — acceptor (with `--max-conns` overload refusal),
//!   connection handlers (with client-disconnect cancellation),
//!   instance workers, graceful drain;
//! * [`loadgen`] — the fixed-seed load harness behind
//!   `BENCH_serve_baseline.json` and the mixed-tenant soak harness
//!   behind `BENCH_serve_soak.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod http;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;
pub mod trace;
