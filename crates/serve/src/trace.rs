//! Request-span tracing: wall-clock Chrome-trace spans for every job
//! that flows through the daemon.
//!
//! The simulator's [`gnna_telemetry::Tracer`] is single-threaded by
//! design (cycle timestamps, `Rc<RefCell<_>>` sharing); the daemon is
//! not. [`SpanTracer`] wraps one `Tracer` in a `Mutex` and stamps
//! events with **microseconds since daemon start**, so the same Chrome
//! `trace_event` JSON loads in Perfetto with real time on the axis.
//!
//! Track layout:
//!
//! * process `requests`, one thread per job (`job <span id>`): a
//!   `request` span with `queue_wait` → `coalesce` → `simulate` →
//!   `respond` child spans — the same stage boundaries the response's
//!   `telemetry` object reports in microseconds.
//! * process `instances`, one thread per accelerator instance
//!   (`instance N`): one span per executed batch, named
//!   `batch[<size>] spans=<id>,<id>,...` so a batch links the member
//!   jobs it coalesced.

use gnna_telemetry::{TraceLevel, Tracer};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Allocates request span ids (process-wide, monotonically increasing).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh span id for an admitted job. Ids are rendered in hex
/// (`format_span_id`) wherever they reach users.
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The user-facing form of a span id (hex, as carried in responses).
pub fn format_span_id(id: u64) -> String {
    format!("{id:x}")
}

/// Stage boundaries of one completed job, all on the same monotonic
/// clock.
#[derive(Debug, Clone, Copy)]
pub struct JobSpan {
    /// Span id assigned at admission.
    pub span_id: u64,
    /// When the job entered its batch queue.
    pub enqueued: Instant,
    /// When a worker adopted the job into a batch.
    pub batched: Instant,
    /// When the batch began executing.
    pub exec_start: Instant,
    /// When simulation (or the functional answer) finished.
    pub sim_done: Instant,
    /// When the job's response body was assembled.
    pub responded: Instant,
}

/// Thread-safe wall-clock span tracer (see module docs).
pub struct SpanTracer {
    inner: Mutex<Tracer>,
    instance_tracks: Mutex<HashMap<usize, gnna_telemetry::TrackId>>,
    started: Instant,
}

impl std::fmt::Debug for SpanTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTracer").finish_non_exhaustive()
    }
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracer {
    /// A tracer whose timestamps start at 0 µs now.
    pub fn new() -> Self {
        SpanTracer {
            inner: Mutex::new(Tracer::new(TraceLevel::Event)),
            instance_tracks: Mutex::new(HashMap::new()),
            started: Instant::now(),
        }
    }

    fn micros(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.started).as_micros() as u64
    }

    /// Records one batch execution and the per-job stage spans of every
    /// member. One lock acquisition per batch keeps the tracer off the
    /// per-request fast path.
    pub fn record_batch(&self, instance: usize, begin: Instant, end: Instant, jobs: &[JobSpan]) {
        let mut tracer = self.inner.lock().expect("tracer poisoned");
        let instance_track = *self
            .instance_tracks
            .lock()
            .expect("tracks poisoned")
            .entry(instance)
            .or_insert_with(|| tracer.register_track("instances", &format!("instance {instance}")));
        let mut name = String::with_capacity(24 + jobs.len() * 8);
        name.push_str(&format!("batch[{}] spans=", jobs.len()));
        for (i, j) in jobs.iter().enumerate() {
            if i > 0 {
                name.push(',');
            }
            name.push_str(&format_span_id(j.span_id));
        }
        tracer.set_now(self.micros(begin));
        tracer.begin(instance_track, &name);
        tracer.set_now(self.micros(end));
        tracer.end(instance_track, &name);

        for j in jobs {
            let track =
                tracer.register_track("requests", &format!("job {}", format_span_id(j.span_id)));
            let stages = [
                ("queue_wait", j.enqueued, j.batched),
                ("coalesce", j.batched, j.exec_start),
                ("simulate", j.exec_start, j.sim_done),
                ("respond", j.sim_done, j.responded),
            ];
            tracer.set_now(self.micros(j.enqueued));
            tracer.begin(track, "request");
            for (name, from, to) in stages {
                tracer.set_now(self.micros(from));
                tracer.begin(track, name);
                tracer.set_now(self.micros(to));
                tracer.end(track, name);
            }
            tracer.set_now(self.micros(j.responded));
            tracer.end(track, "request");
        }
    }

    /// Number of events recorded so far (tests).
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("tracer poisoned").event_count()
    }

    /// Serializes the trace as Chrome `trace_event` JSON.
    pub fn to_chrome_json_string(&self) -> String {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .to_chrome_json_string()
    }

    /// Writes the Chrome trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file I/O failure.
    pub fn write_to(&self, path: &str) -> io::Result<()> {
        std::fs::write(path, self.to_chrome_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnna_telemetry::json::{self, JsonValue};
    use std::time::Duration;

    #[test]
    fn span_ids_are_unique_and_hex() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, b);
        assert_eq!(format_span_id(255), "ff");
    }

    #[test]
    fn batch_and_job_spans_render_as_chrome_json() {
        let t = SpanTracer::new();
        let t0 = t.started;
        let step = |n: u64| t0 + Duration::from_micros(n);
        let job = JobSpan {
            span_id: 0x2a,
            enqueued: step(10),
            batched: step(20),
            exec_start: step(30),
            sim_done: step(90),
            responded: step(100),
        };
        t.record_batch(1, step(30), step(100), &[job]);

        let doc = json::parse(&t.to_chrome_json_string()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let named = |n: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some(n))
                .count()
        };
        // Each stage opens and closes once.
        for stage in ["request", "queue_wait", "coalesce", "simulate", "respond"] {
            assert_eq!(named(stage), 2, "{stage}");
        }
        // The batch span names its member span ids.
        assert_eq!(named("batch[1] spans=2a"), 2);
        // Timestamps are µs offsets on the shared clock.
        let sim_begin = events
            .iter()
            .find(|e| {
                e.get("name").and_then(JsonValue::as_str) == Some("simulate")
                    && e.get("ph").and_then(JsonValue::as_str) == Some("B")
            })
            .unwrap();
        assert_eq!(sim_begin.get("ts").and_then(JsonValue::as_u64), Some(30));
    }
}
