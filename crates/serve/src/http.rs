//! Minimal std-only HTTP/1.1 framing: enough of the protocol for a
//! JSON job API (request line + headers + `Content-Length` bodies,
//! keep-alive by default) without pulling a web framework into an
//! offline workspace. Both directions live here — the daemon parses
//! requests and the load generator parses responses over the same
//! framing rules.

use std::io::{self, BufRead, Write};

/// Cap on request bodies (16 MiB) so a malformed `Content-Length`
/// cannot make the daemon allocate unbounded memory.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (upper-case as sent: `GET`, `POST`, ...).
    pub method: String,
    /// Request path including any query string.
    pub path: String,
    /// Headers as (lower-cased name, value) pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None); // clean EOF between requests
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads one request off a keep-alive connection. Returns `Ok(None)` on
/// a clean EOF (peer closed between requests).
///
/// # Errors
///
/// I/O errors, or `InvalidData` for malformed framing.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(start) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad request line: {start:?}"),
            ))
        }
    };
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside headers",
            ));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad header line: {line:?}"),
            ));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method,
        path,
        headers,
        body: String::new(),
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request body too large",
            ));
        }
        let mut body = vec![0u8; len];
        io::Read::read_exact(reader, &mut body)?;
        req.body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    }
    Ok(Some(req))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response (JSON body, explicit `Content-Length`, connection
/// kept open unless `close`).
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    if close {
        writer.write_all(b"Connection: close\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// One parsed HTTP response (client side — used by the load generator
/// and the smoke tests).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers as (lower-cased name, value) pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one response off a keep-alive connection. Returns `Ok(None)`
/// on clean EOF.
///
/// # Errors
///
/// I/O errors, or `InvalidData` for malformed framing.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Option<Response>> {
    let Some(start) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code.parse::<u16>().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status: {start:?}"))
        })?,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {start:?}"),
            ))
        }
    };
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside headers",
            ));
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response body too large",
        ));
    }
    let mut body = vec![0u8; len];
    io::Read::read_exact(reader, &mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(Some(Response {
        status,
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_body() {
        let raw = "POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer");
        assert_eq!(req.body, "{\"a\":1}");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn eof_between_requests_is_none() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 429, &[("Retry-After", "1")], "{}", false).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.body, "{}");
    }

    #[test]
    fn rejects_malformed_request_line() {
        let raw = "garbage\r\n\r\n";
        assert!(read_request(&mut BufReader::new(raw.as_bytes())).is_err());
    }
}
