//! Serving telemetry: request counters, latency quantiles, and the
//! batch-size histogram behind `GET /stats`, built on the
//! `gnna-telemetry` metrics registry so the snapshot format matches the
//! simulator's other telemetry surfaces.

use gnna_telemetry::{HistogramSummary, MetricsRegistry};
use std::sync::Mutex;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    started: Instant,
    requests: u64,
    ok: u64,
    client_errors: u64,
    server_errors: u64,
    rejected: u64,
    batches: u64,
    batched_jobs: u64,
    max_batch_observed: u64,
    latency_us: HistogramSummary,
    batch_size: HistogramSummary,
}

/// Shared serving counters (one per daemon).
#[derive(Debug)]
pub struct ServeStats {
    inner: Mutex<Inner>,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Fresh counters; the req/s clock starts now.
    pub fn new() -> Self {
        ServeStats {
            inner: Mutex::new(Inner {
                started: Instant::now(),
                requests: 0,
                ok: 0,
                client_errors: 0,
                server_errors: 0,
                rejected: 0,
                batches: 0,
                batched_jobs: 0,
                max_batch_observed: 0,
                latency_us: HistogramSummary::default(),
                batch_size: HistogramSummary::default(),
            }),
        }
    }

    /// Records one finished inference request and its end-to-end
    /// latency (admission to response) in microseconds.
    pub fn record_request(&self, status: u16, latency_us: u64) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.requests += 1;
        match status {
            200 => s.ok += 1,
            429 => s.rejected += 1,
            400..=499 => s.client_errors += 1,
            _ => s.server_errors += 1,
        }
        s.latency_us.observe(latency_us as f64);
    }

    /// Records one executed batch.
    pub fn record_batch(&self, size: usize) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.batches += 1;
        s.batched_jobs += size as u64;
        s.max_batch_observed = s.max_batch_observed.max(size as u64);
        s.batch_size.observe(size as f64);
    }

    /// Renders the `/stats` snapshot as the metrics-registry JSON,
    /// including the current per-instance queue depths.
    pub fn snapshot_json(&self, queue_depths: &[usize]) -> String {
        let s = self.inner.lock().expect("stats poisoned");
        let mut reg = MetricsRegistry::new();
        reg.counter_set("serve.requests", s.requests);
        reg.counter_set("serve.ok", s.ok);
        reg.counter_set("serve.client_errors", s.client_errors);
        reg.counter_set("serve.server_errors", s.server_errors);
        reg.counter_set("serve.rejected_429", s.rejected);
        reg.counter_set("serve.batches", s.batches);
        reg.counter_set("serve.batched_jobs", s.batched_jobs);
        reg.counter_set("serve.max_batch_observed", s.max_batch_observed);
        let elapsed = s.started.elapsed().as_secs_f64().max(1e-9);
        reg.gauge_set("serve.uptime_s", elapsed);
        reg.gauge_set("serve.req_per_s", s.requests as f64 / elapsed);
        reg.gauge_set("serve.latency_p50_us", s.latency_us.p50());
        reg.gauge_set("serve.latency_p95_us", s.latency_us.p95());
        reg.gauge_set("serve.latency_p99_us", s.latency_us.p99());
        reg.gauge_set("serve.latency_p999_us", s.latency_us.p999());
        reg.gauge_set("serve.latency_mean_us", s.latency_us.mean());
        reg.histogram_set("serve.latency_us", s.latency_us);
        reg.histogram_set("serve.batch_size", s.batch_size);
        let total_depth: usize = queue_depths.iter().sum();
        reg.gauge_set("serve.queue_depth", total_depth as f64);
        for (i, d) in queue_depths.iter().enumerate() {
            reg.gauge_set(&format!("serve.queue_depth.instance{i}"), *d as f64);
        }
        reg.to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnna_telemetry::json;

    #[test]
    fn snapshot_carries_the_serving_metrics() {
        let stats = ServeStats::new();
        stats.record_request(200, 1_500);
        stats.record_request(200, 2_500);
        stats.record_request(429, 10);
        stats.record_batch(2);
        let snap = stats.snapshot_json(&[1, 0]);
        let v = json::parse(&snap).unwrap();
        let find = |name: &str| {
            v.as_array()
                .into_iter()
                .flatten()
                .find(|m| m.get("name").and_then(|n| n.as_str()) == Some(name))
                .cloned()
                .or_else(|| v.get(name).cloned())
        };
        // Whatever the registry's JSON shape, the snapshot must mention
        // the core serving metrics.
        for name in [
            "serve.requests",
            "serve.rejected_429",
            "serve.req_per_s",
            "serve.latency_p99_us",
            "serve.latency_p999_us",
            "serve.batch_size",
            "serve.queue_depth",
        ] {
            assert!(
                find(name).is_some() || snap.contains(name),
                "snapshot missing {name}: {snap}"
            );
        }
    }
}
