//! Serving telemetry: request counters, latency quantiles, and the
//! batch-size histogram behind `GET /stats`, built on the
//! `gnna-telemetry` metrics registry so the snapshot format matches the
//! simulator's other telemetry surfaces.

use gnna_telemetry::{HistogramSummary, MetricsRegistry};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Tenants tracked individually before overflow folds into `"other"`
/// (keeps `/stats` bounded against tenant-id cardinality).
const MAX_TRACKED_TENANTS: usize = 64;

/// Per-tenant admission and outcome counters, exported as
/// `serve.tenant.<name>.<counter>`.
#[derive(Debug, Default, Clone)]
pub struct TenantCounters {
    /// Jobs accepted into a queue.
    pub admitted: u64,
    /// Jobs answered 200.
    pub ok: u64,
    /// Jobs rejected 429 on queue capacity.
    pub rejected_429: u64,
    /// Jobs rejected 429 by the tenant's token bucket.
    pub throttled: u64,
    /// Jobs shed at admission because the wait estimate exceeded their
    /// deadline.
    pub shed_deadline: u64,
    /// Admitted jobs whose response landed after their deadline.
    pub deadline_missed: u64,
    /// Cycle jobs answered in functional mode past the degrade
    /// watermark.
    pub degraded: u64,
}

/// Best-effort resident-set size in bytes (`/proc/self/statm` resident
/// pages × 4096 on linux, 0 elsewhere) — the soak harness samples this
/// to assert a flat memory ceiling.
pub fn mem_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
            if let Some(resident) = statm.split_whitespace().nth(1) {
                if let Ok(pages) = resident.parse::<u64>() {
                    return pages * 4096;
                }
            }
        }
    }
    0
}

#[derive(Debug)]
struct Inner {
    started: Instant,
    requests: u64,
    ok: u64,
    client_errors: u64,
    server_errors: u64,
    rejected: u64,
    throttled: u64,
    shed_deadline: u64,
    deadline_missed: u64,
    degraded: u64,
    cancelled: u64,
    conn_rejected: u64,
    batches: u64,
    batched_jobs: u64,
    max_batch_observed: u64,
    rss_peak_bytes: u64,
    latency_us: HistogramSummary,
    batch_size: HistogramSummary,
    tenants: BTreeMap<String, TenantCounters>,
}

impl Inner {
    fn tenant(&mut self, name: &str) -> &mut TenantCounters {
        if !self.tenants.contains_key(name) && self.tenants.len() >= MAX_TRACKED_TENANTS {
            return self.tenants.entry("other".to_string()).or_default();
        }
        self.tenants.entry(name.to_string()).or_default()
    }
}

/// Shared serving counters (one per daemon).
#[derive(Debug)]
pub struct ServeStats {
    inner: Mutex<Inner>,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Fresh counters; the req/s clock starts now.
    pub fn new() -> Self {
        ServeStats {
            inner: Mutex::new(Inner {
                started: Instant::now(),
                requests: 0,
                ok: 0,
                client_errors: 0,
                server_errors: 0,
                rejected: 0,
                throttled: 0,
                shed_deadline: 0,
                deadline_missed: 0,
                degraded: 0,
                cancelled: 0,
                conn_rejected: 0,
                batches: 0,
                batched_jobs: 0,
                max_batch_observed: 0,
                rss_peak_bytes: 0,
                latency_us: HistogramSummary::default(),
                batch_size: HistogramSummary::default(),
                tenants: BTreeMap::new(),
            }),
        }
    }

    /// Records one finished inference request and its end-to-end
    /// latency (admission to response) in microseconds.
    pub fn record_request(&self, status: u16, latency_us: u64) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.requests += 1;
        match status {
            200 => s.ok += 1,
            429 => s.rejected += 1,
            400..=499 => s.client_errors += 1,
            _ => s.server_errors += 1,
        }
        s.latency_us.observe(latency_us as f64);
    }

    /// Records one executed batch.
    pub fn record_batch(&self, size: usize) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.batches += 1;
        s.batched_jobs += size as u64;
        s.max_batch_observed = s.max_batch_observed.max(size as u64);
        s.batch_size.observe(size as f64);
    }

    /// Records one admitted job for `tenant`; `degraded` when the
    /// degrade watermark flipped it to functional execution.
    pub fn record_admitted(&self, tenant: &str, degraded: bool) {
        let mut s = self.inner.lock().expect("stats poisoned");
        if degraded {
            s.degraded += 1;
        }
        let t = s.tenant(tenant);
        t.admitted += 1;
        if degraded {
            t.degraded += 1;
        }
    }

    /// Records one 200 outcome for `tenant`; `missed_deadline` when
    /// the response landed after the job's `deadline_ms`.
    pub fn record_tenant_ok(&self, tenant: &str, missed_deadline: bool) {
        let mut s = self.inner.lock().expect("stats poisoned");
        if missed_deadline {
            s.deadline_missed += 1;
        }
        let t = s.tenant(tenant);
        t.ok += 1;
        if missed_deadline {
            t.deadline_missed += 1;
        }
    }

    /// Records one queue-capacity 429 for `tenant`.
    pub fn record_rejected(&self, tenant: &str) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.tenant(tenant).rejected_429 += 1;
    }

    /// Records one token-bucket 429 for `tenant`.
    pub fn record_throttled(&self, tenant: &str) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.throttled += 1;
        s.tenant(tenant).throttled += 1;
    }

    /// Records one deadline-shed admission rejection for `tenant`.
    pub fn record_shed_deadline(&self, tenant: &str) {
        let mut s = self.inner.lock().expect("stats poisoned");
        s.shed_deadline += 1;
        s.tenant(tenant).shed_deadline += 1;
    }

    /// Records `n` jobs dropped at dequeue because their client
    /// disconnected.
    pub fn record_cancelled(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.inner.lock().expect("stats poisoned").cancelled += n;
    }

    /// Records one connection refused by `--max-conns`.
    pub fn record_conn_rejected(&self) {
        self.inner.lock().expect("stats poisoned").conn_rejected += 1;
    }

    /// Samples the current RSS into the peak gauge (called from the
    /// `/stats` path and the instance workers).
    pub fn sample_rss(&self) {
        let rss = mem_rss_bytes();
        let mut s = self.inner.lock().expect("stats poisoned");
        s.rss_peak_bytes = s.rss_peak_bytes.max(rss);
    }

    /// Per-tenant counter snapshot (for the soak harness).
    pub fn tenant_snapshot(&self) -> Vec<(String, TenantCounters)> {
        let s = self.inner.lock().expect("stats poisoned");
        s.tenants
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders the `/stats` snapshot as the metrics-registry JSON,
    /// including the current per-instance queue depths.
    pub fn snapshot_json(&self, queue_depths: &[usize]) -> String {
        let rss_now = mem_rss_bytes();
        let mut s = self.inner.lock().expect("stats poisoned");
        s.rss_peak_bytes = s.rss_peak_bytes.max(rss_now);
        let s = &*s;
        let mut reg = MetricsRegistry::new();
        reg.counter_set("serve.requests", s.requests);
        reg.counter_set("serve.ok", s.ok);
        reg.counter_set("serve.client_errors", s.client_errors);
        reg.counter_set("serve.server_errors", s.server_errors);
        reg.counter_set("serve.rejected_429", s.rejected);
        reg.counter_set("serve.throttled_429", s.throttled);
        reg.counter_set("serve.shed_deadline", s.shed_deadline);
        reg.counter_set("serve.deadline_missed", s.deadline_missed);
        reg.counter_set("serve.degraded", s.degraded);
        reg.counter_set("serve.cancelled", s.cancelled);
        reg.counter_set("serve.conn_rejected", s.conn_rejected);
        reg.counter_set("serve.batches", s.batches);
        reg.counter_set("serve.batched_jobs", s.batched_jobs);
        reg.counter_set("serve.max_batch_observed", s.max_batch_observed);
        reg.gauge_set("serve.mem_rss_bytes", rss_now as f64);
        reg.gauge_set("serve.mem_rss_peak_bytes", s.rss_peak_bytes as f64);
        for (name, t) in &s.tenants {
            reg.counter_set(&format!("serve.tenant.{name}.admitted"), t.admitted);
            reg.counter_set(&format!("serve.tenant.{name}.ok"), t.ok);
            reg.counter_set(&format!("serve.tenant.{name}.rejected_429"), t.rejected_429);
            reg.counter_set(&format!("serve.tenant.{name}.throttled"), t.throttled);
            reg.counter_set(
                &format!("serve.tenant.{name}.shed_deadline"),
                t.shed_deadline,
            );
            reg.counter_set(
                &format!("serve.tenant.{name}.deadline_missed"),
                t.deadline_missed,
            );
            reg.counter_set(&format!("serve.tenant.{name}.degraded"), t.degraded);
        }
        let elapsed = s.started.elapsed().as_secs_f64().max(1e-9);
        reg.gauge_set("serve.uptime_s", elapsed);
        reg.gauge_set("serve.req_per_s", s.requests as f64 / elapsed);
        reg.gauge_set("serve.latency_p50_us", s.latency_us.p50());
        reg.gauge_set("serve.latency_p95_us", s.latency_us.p95());
        reg.gauge_set("serve.latency_p99_us", s.latency_us.p99());
        reg.gauge_set("serve.latency_p999_us", s.latency_us.p999());
        reg.gauge_set("serve.latency_mean_us", s.latency_us.mean());
        reg.histogram_set("serve.latency_us", s.latency_us);
        reg.histogram_set("serve.batch_size", s.batch_size);
        let total_depth: usize = queue_depths.iter().sum();
        reg.gauge_set("serve.queue_depth", total_depth as f64);
        for (i, d) in queue_depths.iter().enumerate() {
            reg.gauge_set(&format!("serve.queue_depth.instance{i}"), *d as f64);
        }
        reg.to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnna_telemetry::json;

    #[test]
    fn snapshot_carries_the_serving_metrics() {
        let stats = ServeStats::new();
        stats.record_request(200, 1_500);
        stats.record_request(200, 2_500);
        stats.record_request(429, 10);
        stats.record_batch(2);
        let snap = stats.snapshot_json(&[1, 0]);
        let v = json::parse(&snap).unwrap();
        let find = |name: &str| {
            v.as_array()
                .into_iter()
                .flatten()
                .find(|m| m.get("name").and_then(|n| n.as_str()) == Some(name))
                .cloned()
                .or_else(|| v.get(name).cloned())
        };
        // Whatever the registry's JSON shape, the snapshot must mention
        // the core serving metrics.
        for name in [
            "serve.requests",
            "serve.rejected_429",
            "serve.throttled_429",
            "serve.shed_deadline",
            "serve.deadline_missed",
            "serve.degraded",
            "serve.cancelled",
            "serve.conn_rejected",
            "serve.req_per_s",
            "serve.latency_p99_us",
            "serve.latency_p999_us",
            "serve.batch_size",
            "serve.queue_depth",
            "serve.mem_rss_bytes",
            "serve.mem_rss_peak_bytes",
        ] {
            assert!(
                find(name).is_some() || snap.contains(name),
                "snapshot missing {name}: {snap}"
            );
        }
    }

    #[test]
    fn tenant_counters_flow_into_the_snapshot() {
        let stats = ServeStats::new();
        stats.record_admitted("acme", false);
        stats.record_admitted("acme", true);
        stats.record_tenant_ok("acme", true);
        stats.record_throttled("flood");
        stats.record_shed_deadline("flood");
        stats.record_rejected("flood");
        let snap = stats.snapshot_json(&[0]);
        for name in [
            "serve.tenant.acme.admitted",
            "serve.tenant.acme.degraded",
            "serve.tenant.acme.deadline_missed",
            "serve.tenant.flood.throttled",
            "serve.tenant.flood.shed_deadline",
            "serve.tenant.flood.rejected_429",
        ] {
            assert!(snap.contains(name), "snapshot missing {name}: {snap}");
        }
        let tenants = stats.tenant_snapshot();
        let acme = &tenants.iter().find(|(n, _)| n == "acme").unwrap().1;
        assert_eq!(acme.admitted, 2);
        assert_eq!(acme.degraded, 1);
        assert_eq!(acme.deadline_missed, 1);
    }

    #[test]
    fn tenant_cardinality_folds_into_other() {
        let stats = ServeStats::new();
        for i in 0..200 {
            stats.record_admitted(&format!("t{i}"), false);
        }
        let tenants = stats.tenant_snapshot();
        assert!(tenants.len() <= 65, "unbounded tenant counters");
        let overflow: u64 = tenants
            .iter()
            .filter(|(n, _)| n == "other")
            .map(|(_, t)| t.admitted)
            .sum();
        assert!(overflow > 0, "overflow tenants must land in \"other\"");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_gauge_reads_nonzero_on_linux() {
        assert!(mem_rss_bytes() > 0);
    }
}
