//! The daemon: TCP acceptor, per-connection handlers, per-instance
//! batch workers, routing, backpressure, and graceful shutdown.
//!
//! Threading model (std-only): one acceptor thread, one handler thread
//! per live connection (blocking I/O), and one worker thread per
//! simulated accelerator instance. A handler parses a job, routes it to
//! an instance queue by batch-key affinity (jobs that can batch land on
//! the same instance), and blocks on the job's private response
//! channel; workers pop coalesced batches and execute them on the
//! shared engine. A full queue answers HTTP 429 with `Retry-After`
//! instead of admitting unbounded work.
//!
//! Shutdown (`POST /shutdown` — there is no portable std signal hook)
//! closes every queue so workers drain their backlog and exit, then
//! wakes the acceptor with a loopback connect; jobs admitted before the
//! close are all answered.

use crate::engine::Engine;
use crate::http::{read_request, write_response, Request};
use crate::protocol::{error_body, parse_job, JobInput};
use crate::queue::{BatchKey, BatchQueue, Job, PushError};
use crate::stats::ServeStats;
use crate::trace::{next_span_id, SpanTracer};
use gnna_bench::Scale;
use gnna_core::config::AcceleratorConfig;
use gnna_executor::Executor;
use std::hash::{Hash, Hasher};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Simulated accelerator instances (one batch queue + worker each).
    pub instances: usize,
    /// Largest batch one instance coalesces.
    pub max_batch: usize,
    /// Bounded-latency flush window: how long a worker holds a partial
    /// batch open for stragglers.
    pub flush: Duration,
    /// Per-instance queue bound (admission control → HTTP 429).
    pub queue_cap: usize,
    /// Shared executor thread budget for response assembly.
    pub threads: usize,
    /// Accelerator configuration cycle-accurate jobs simulate on.
    pub accel: AcceleratorConfig,
    /// Dataset scale for named benchmark inputs.
    pub scale: Scale,
    /// Per-connection read timeout: a connection that sends no complete
    /// request within this window is closed (slowloris defence).
    /// `Duration::ZERO` disables the timeout.
    pub read_timeout: Duration,
    /// When set, record request/batch spans and write the Chrome trace
    /// JSON here once the daemon drains.
    pub trace_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            instances: 4,
            max_batch: 16,
            flush: Duration::from_millis(1),
            queue_cap: 256,
            threads: 1,
            accel: AcceleratorConfig::gpu_iso_bandwidth(),
            scale: Scale::Smoke,
            read_timeout: Duration::from_millis(5000),
            trace_out: None,
        }
    }
}

struct Shared {
    engine: Engine,
    queues: Vec<Arc<BatchQueue>>,
    stats: ServeStats,
    shutdown: AtomicBool,
    addr: SocketAddr,
    read_timeout: Duration,
    tracer: Option<Arc<SpanTracer>>,
}

impl Shared {
    /// Idempotent shutdown trigger: close the queues (workers drain and
    /// exit) and wake the acceptor.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            for q in &self.queues {
                q.close();
            }
            // The acceptor blocks in accept(); a loopback connect wakes
            // it to observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn queue_depths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.depth()).collect()
    }
}

/// A running daemon: its bound address plus join/shutdown handles.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    trace_out: Option<String>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Triggers a graceful shutdown (same path as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Waits for the acceptor and every instance worker to exit.
    /// In-flight batches finish first — that is the drain guarantee.
    /// With `trace_out` configured, the request-span Chrome trace is
    /// written once the workers are done.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let (Some(path), Some(tracer)) = (&self.trace_out, &self.shared.tracer) {
            if let Err(e) = tracer.write_to(path) {
                eprintln!("gnna-serve: failed to write trace {path}: {e}");
            }
        }
    }
}

/// Routes a job to an instance queue: batch-key affinity (so
/// coalescible jobs meet in one queue) spread by dataset-instance index
/// (so multi-graph datasets use every accelerator instance).
fn route(request_key: &BatchKey, input: &JobInput, instances: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    request_key.hash(&mut h);
    if let JobInput::Named { instance, .. } = input {
        (instance / 8).hash(&mut h); // groups of 8 keep batches dense
    }
    (h.finish() % instances as u64) as usize
}

fn handle_infer(shared: &Shared, body: &str) -> (u16, String, Vec<(&'static str, String)>) {
    let admitted = Instant::now();
    let request = match parse_job(body) {
        Ok(r) => r,
        Err(msg) => {
            shared
                .stats
                .record_request(400, admitted.elapsed().as_micros() as u64);
            return (400, error_body(&msg), Vec::new());
        }
    };
    let key = BatchKey::of(&request);
    let qi = route(&key, &request.input, shared.queues.len());
    let (tx, rx) = std::sync::mpsc::channel();
    let job = Job {
        request,
        respond: tx,
        enqueued: admitted,
        span_id: next_span_id(),
        batched: None,
    };
    match shared.queues[qi].push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared
                .stats
                .record_request(429, admitted.elapsed().as_micros() as u64);
            return (
                429,
                error_body("queue full, retry later"),
                vec![("Retry-After", "1".to_string())],
            );
        }
        Err(PushError::Closed(_)) => {
            shared
                .stats
                .record_request(503, admitted.elapsed().as_micros() as u64);
            return (503, error_body("server is shutting down"), Vec::new());
        }
    }
    // The worker owns the job now; its outcome (or a dropped channel on
    // a worker bug) ends the wait.
    let outcome = rx.recv();
    let latency_us = admitted.elapsed().as_micros() as u64;
    match outcome {
        Ok(o) => {
            shared.stats.record_request(o.status, latency_us);
            (o.status, o.body, Vec::new())
        }
        Err(_) => {
            shared.stats.record_request(500, latency_us);
            (500, error_body("worker dropped the job"), Vec::new())
        }
    }
}

fn handle_request(shared: &Shared, req: &Request) -> (u16, String, Vec<(&'static str, String)>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string(), Vec::new()),
        ("GET", "/stats") => (
            200,
            shared.stats.snapshot_json(&shared.queue_depths()),
            Vec::new(),
        ),
        ("POST", "/v1/infer") => handle_infer(shared, &req.body),
        ("POST", "/shutdown") => {
            shared.trigger_shutdown();
            (200, "{\"status\":\"draining\"}".to_string(), Vec::new())
        }
        ("GET" | "POST", _) => (404, error_body("no such endpoint"), Vec::new()),
        _ => (405, error_body("method not allowed"), Vec::new()),
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    if shared.read_timeout > Duration::ZERO {
        stream.set_read_timeout(Some(shared.read_timeout))?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            // A connection idling past the read timeout is closed
            // without tearing anything down — the slowloris defence.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) => return Err(e),
        };
        let close = req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let (status, body, extra) = handle_request(shared, &req);
        let headers: Vec<(&str, &str)> = extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
        write_response(&mut writer, status, &headers, &body, close)?;
        if close {
            break;
        }
    }
    Ok(())
}

/// Binds and starts the daemon; returns once it is accepting.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let instances = cfg.instances.max(1);
    let queues: Vec<Arc<BatchQueue>> = (0..instances)
        .map(|_| Arc::new(BatchQueue::new(cfg.queue_cap)))
        .collect();
    let tracer = cfg.trace_out.as_ref().map(|_| Arc::new(SpanTracer::new()));
    let shared = Arc::new(Shared {
        engine: Engine::new(cfg.accel.clone(), cfg.scale, Executor::new(cfg.threads))
            .with_tracer(tracer.clone()),
        queues,
        stats: ServeStats::new(),
        shutdown: AtomicBool::new(false),
        addr,
        read_timeout: cfg.read_timeout,
        tracer,
    });

    let mut workers = Vec::with_capacity(instances);
    for qi in 0..instances {
        let shared = Arc::clone(&shared);
        let max_batch = cfg.max_batch;
        let flush = cfg.flush;
        workers.push(std::thread::spawn(move || {
            let queue = Arc::clone(&shared.queues[qi]);
            while let Some(batch) = queue.pop_batch(max_batch, flush) {
                shared.stats.record_batch(batch.len());
                shared.engine.execute_batch(qi, batch);
            }
        }));
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = handle_connection(&shared, stream);
                });
            }
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor,
        workers,
        trace_out: cfg.trace_out.clone(),
    })
}
