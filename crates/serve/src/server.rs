//! The daemon: TCP acceptor, per-connection handlers, per-instance
//! batch workers, routing, backpressure, and graceful shutdown.
//!
//! Threading model (std-only): one acceptor thread, one handler thread
//! per live connection (blocking I/O), and one worker thread per
//! simulated accelerator instance. A handler parses a job, routes it to
//! an instance queue by batch-key affinity (jobs that can batch land on
//! the same instance), and blocks on the job's private response
//! channel; workers pop coalesced batches and execute them on the
//! shared engine.
//!
//! Overload protection is layered: `--max-conns` refuses connections
//! past the limit with an immediate 503; per-tenant token buckets
//! throttle floods at admission (HTTP 429 with a refill-derived
//! `Retry-After`); a full queue answers 429 with a pressure-derived
//! `Retry-After`; jobs whose `deadline_ms` the backlog cannot meet are
//! shed at accept time; and past the degrade watermark, cycle-mode
//! jobs are answered in functional mode (flagged in the response)
//! instead of rejected. While a handler waits for its worker it polls
//! the socket, so a disconnected client's job is cancelled before it
//! burns simulator time.
//!
//! Shutdown (`POST /shutdown` — there is no portable std signal hook)
//! closes every queue so workers drain their backlog and exit, then
//! wakes the acceptor with a loopback connect; jobs admitted before the
//! close are all answered.

use crate::engine::Engine;
use crate::http::{read_request, write_response, Request};
use crate::protocol::{error_body, parse_job, JobInput};
use crate::queue::{BatchKey, BatchQueue, Job, PushError, TenantPolicy};
use crate::stats::ServeStats;
use crate::trace::{next_span_id, SpanTracer};
use gnna_bench::Scale;
use gnna_core::config::AcceleratorConfig;
use gnna_executor::Executor;
use std::hash::{Hash, Hasher};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Simulated accelerator instances (one batch queue + worker each).
    pub instances: usize,
    /// Largest batch one instance coalesces.
    pub max_batch: usize,
    /// Bounded-latency flush window: how long a worker holds a partial
    /// batch open for stragglers.
    pub flush: Duration,
    /// Per-instance queue bound (admission control → HTTP 429).
    pub queue_cap: usize,
    /// Shared executor thread budget for response assembly.
    pub threads: usize,
    /// Accelerator configuration cycle-accurate jobs simulate on.
    pub accel: AcceleratorConfig,
    /// Dataset scale for named benchmark inputs.
    pub scale: Scale,
    /// Per-connection read timeout: a connection that sends no complete
    /// request within this window is closed (slowloris defence).
    /// `Duration::ZERO` disables the timeout.
    pub read_timeout: Duration,
    /// When set, record request/batch spans and write the Chrome trace
    /// JSON here once the daemon drains.
    pub trace_out: Option<String>,
    /// Tenant admission policy (token buckets + DRR weights).
    pub policy: TenantPolicy,
    /// Live-connection limit; past it new connections get an immediate
    /// 503. `0` disables the limit.
    pub max_conns: usize,
    /// Graceful-degradation watermark: cycle-mode jobs admitted while a
    /// queue's backlog is at or past this depth run in functional mode
    /// (flagged `"degraded":true`). `0` disables degradation.
    pub degrade_watermark: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            instances: 4,
            max_batch: 16,
            flush: Duration::from_millis(1),
            queue_cap: 256,
            threads: 1,
            accel: AcceleratorConfig::gpu_iso_bandwidth(),
            scale: Scale::Smoke,
            read_timeout: Duration::from_millis(5000),
            trace_out: None,
            policy: TenantPolicy::default(),
            max_conns: 0,
            degrade_watermark: 0,
        }
    }
}

struct Shared {
    engine: Engine,
    queues: Vec<Arc<BatchQueue>>,
    stats: ServeStats,
    shutdown: AtomicBool,
    addr: SocketAddr,
    read_timeout: Duration,
    tracer: Option<Arc<SpanTracer>>,
    conns: AtomicUsize,
    max_conns: usize,
}

impl Shared {
    /// Idempotent shutdown trigger: close the queues (workers drain and
    /// exit) and wake the acceptor.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            for q in &self.queues {
                q.close();
            }
            // The acceptor blocks in accept(); a loopback connect wakes
            // it to observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn queue_depths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.depth()).collect()
    }
}

/// A running daemon: its bound address plus join/shutdown handles.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    trace_out: Option<String>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Triggers a graceful shutdown (same path as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Waits for the acceptor and every instance worker to exit.
    /// In-flight batches finish first — that is the drain guarantee.
    /// With `trace_out` configured, the request-span Chrome trace is
    /// written once the workers are done.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let (Some(path), Some(tracer)) = (&self.trace_out, &self.shared.tracer) {
            if let Err(e) = tracer.write_to(path) {
                eprintln!("gnna-serve: failed to write trace {path}: {e}");
            }
        }
    }
}

/// Routes a job to an instance queue: batch-key affinity (so
/// coalescible jobs meet in one queue) spread by dataset-instance index
/// (so multi-graph datasets use every accelerator instance).
fn route(request_key: &BatchKey, input: &JobInput, instances: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    request_key.hash(&mut h);
    if let JobInput::Named { instance, .. } = input {
        (instance / 8).hash(&mut h); // groups of 8 keep batches dense
    }
    (h.finish() % instances as u64) as usize
}

/// Whether the client hung up: a non-blocking peek returning EOF (or a
/// hard error) on the connection's socket. `WouldBlock` — or pending
/// bytes — mean the client is still there.
fn client_gone(probe: &TcpStream) -> bool {
    if probe.set_nonblocking(true).is_err() {
        return false;
    }
    let mut buf = [0u8; 1];
    let gone = match probe.peek(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = probe.set_nonblocking(false);
    gone
}

/// How often the waiting handler polls the socket for a disconnect.
const CANCEL_POLL: Duration = Duration::from_millis(25);

fn handle_infer(
    shared: &Shared,
    body: &str,
    probe: Option<&TcpStream>,
) -> (u16, String, Vec<(&'static str, String)>) {
    let admitted = Instant::now();
    let request = match parse_job(body) {
        Ok(r) => r,
        Err(msg) => {
            shared
                .stats
                .record_request(400, admitted.elapsed().as_micros() as u64);
            return (400, error_body(&msg), Vec::new());
        }
    };
    let tenant = request.tenant.clone();
    let deadline_ms = request.deadline_ms;
    let key = BatchKey::of(&request);
    let qi = route(&key, &request.input, shared.queues.len());
    let (tx, rx) = std::sync::mpsc::channel();
    let job = Job::new(request, tx, next_span_id());
    let cancel = Arc::clone(&job.cancelled);
    match shared.queues[qi].push(job) {
        Ok(admission) => {
            shared.stats.record_admitted(&tenant, admission.degraded);
        }
        Err(PushError::Full { retry_after_s, .. }) => {
            shared.stats.record_rejected(&tenant);
            shared
                .stats
                .record_request(429, admitted.elapsed().as_micros() as u64);
            return (
                429,
                error_body("queue full, retry later"),
                vec![("Retry-After", retry_after_s.to_string())],
            );
        }
        Err(PushError::Throttled { retry_after_s, .. }) => {
            shared.stats.record_throttled(&tenant);
            shared
                .stats
                .record_request(429, admitted.elapsed().as_micros() as u64);
            return (
                429,
                error_body("tenant over quota, retry later"),
                vec![("Retry-After", retry_after_s.to_string())],
            );
        }
        Err(PushError::DeadlineUnmeetable {
            estimated_wait_ms,
            retry_after_s,
            ..
        }) => {
            shared.stats.record_shed_deadline(&tenant);
            shared
                .stats
                .record_request(429, admitted.elapsed().as_micros() as u64);
            return (
                429,
                error_body(&format!(
                    "deadline unmeetable: estimated wait {estimated_wait_ms} ms"
                )),
                vec![("Retry-After", retry_after_s.to_string())],
            );
        }
        Err(PushError::Closed(_)) => {
            shared
                .stats
                .record_request(503, admitted.elapsed().as_micros() as u64);
            return (503, error_body("server is shutting down"), Vec::new());
        }
    }
    // The worker owns the job now; while waiting, poll the socket so a
    // vanished client cancels the job instead of burning simulator
    // time. The recv_err path (dropped channel on a worker bug) ends
    // the wait too.
    let outcome = loop {
        match rx.recv_timeout(CANCEL_POLL) {
            Ok(o) => break Ok(o),
            Err(RecvTimeoutError::Disconnected) => break Err(()),
            Err(RecvTimeoutError::Timeout) => {
                if let Some(probe) = probe {
                    if client_gone(probe) {
                        cancel.store(true, Ordering::Relaxed);
                        // Nobody is listening; count it and give up. If
                        // the worker already adopted the job, its
                        // outcome is discarded with the channel.
                        shared
                            .stats
                            .record_request(499, admitted.elapsed().as_micros() as u64);
                        return (499, String::new(), Vec::new());
                    }
                }
            }
        }
    };
    let latency_us = admitted.elapsed().as_micros() as u64;
    match outcome {
        Ok(o) => {
            shared.stats.record_request(o.status, latency_us);
            if o.status == 200 {
                let missed = deadline_ms.is_some_and(|d| latency_us > d.saturating_mul(1_000));
                shared.stats.record_tenant_ok(&tenant, missed);
            }
            (o.status, o.body, Vec::new())
        }
        Err(()) => {
            shared.stats.record_request(500, latency_us);
            (500, error_body("worker dropped the job"), Vec::new())
        }
    }
}

fn handle_request(
    shared: &Shared,
    req: &Request,
    probe: Option<&TcpStream>,
) -> (u16, String, Vec<(&'static str, String)>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string(), Vec::new()),
        ("GET", "/stats") => (
            200,
            shared.stats.snapshot_json(&shared.queue_depths()),
            Vec::new(),
        ),
        ("POST", "/v1/infer") => handle_infer(shared, &req.body, probe),
        ("POST", "/shutdown") => {
            shared.trigger_shutdown();
            (200, "{\"status\":\"draining\"}".to_string(), Vec::new())
        }
        ("GET" | "POST", _) => (404, error_body("no such endpoint"), Vec::new()),
        _ => (405, error_body("method not allowed"), Vec::new()),
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    if shared.read_timeout > Duration::ZERO {
        stream.set_read_timeout(Some(shared.read_timeout))?;
    }
    // One clone feeds the reader, another probes for disconnects while
    // a job waits in the queue (same fd; this thread owns both uses).
    let probe = stream.try_clone()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            // A connection idling past the read timeout is closed
            // without tearing anything down — the slowloris defence.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) => return Err(e),
        };
        let close = req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let (status, body, extra) = handle_request(shared, &req, Some(&probe));
        if status == 499 {
            // Client disconnected while its job was queued — nothing to
            // write to.
            break;
        }
        let headers: Vec<(&str, &str)> = extra.iter().map(|(n, v)| (*n, v.as_str())).collect();
        write_response(&mut writer, status, &headers, &body, close)?;
        if close {
            break;
        }
    }
    Ok(())
}

/// Decrements the live-connection gauge when a handler exits, however
/// it exits.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuses a connection past `--max-conns`: minimal 503 with
/// `Retry-After`, then close. Written raw (no BufWriter) so the
/// acceptor never blocks on a slow client.
fn refuse_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let body = error_body("connection limit reached, retry later");
    let resp = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
}

/// Binds and starts the daemon; returns once it is accepting.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let instances = cfg.instances.max(1);
    let queues: Vec<Arc<BatchQueue>> = (0..instances)
        .map(|_| {
            Arc::new(BatchQueue::with_policy(
                cfg.queue_cap,
                cfg.policy.clone(),
                cfg.degrade_watermark,
            ))
        })
        .collect();
    let tracer = cfg.trace_out.as_ref().map(|_| Arc::new(SpanTracer::new()));
    let shared = Arc::new(Shared {
        engine: Engine::new(cfg.accel.clone(), cfg.scale, Executor::new(cfg.threads))
            .with_tracer(tracer.clone()),
        queues,
        stats: ServeStats::new(),
        shutdown: AtomicBool::new(false),
        addr,
        read_timeout: cfg.read_timeout,
        tracer,
        conns: AtomicUsize::new(0),
        max_conns: cfg.max_conns,
    });

    let mut workers = Vec::with_capacity(instances);
    for qi in 0..instances {
        let shared = Arc::clone(&shared);
        let max_batch = cfg.max_batch;
        let flush = cfg.flush;
        workers.push(std::thread::spawn(move || {
            let queue = Arc::clone(&shared.queues[qi]);
            while let Some(batch) = queue.pop_batch(max_batch, flush) {
                shared.stats.record_batch(batch.len());
                let started = Instant::now();
                let executed = batch.len() as u64;
                shared.engine.execute_batch(qi, batch);
                // Feed the admission-control wait estimator and flush
                // cancel/RSS accounting between batches.
                queue.note_service(started.elapsed().as_micros() as u64 / executed.max(1));
                shared.stats.record_cancelled(queue.take_cancelled());
                shared.stats.sample_rss();
            }
            shared.stats.record_cancelled(queue.take_cancelled());
        }));
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if shared.max_conns > 0
                    && shared.conns.load(Ordering::SeqCst) >= shared.max_conns
                {
                    shared.stats.record_conn_rejected();
                    // Refuse on a short-lived thread so one slow client
                    // cannot stall the acceptor.
                    std::thread::spawn(move || refuse_connection(stream));
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let guard = ConnGuard(Arc::clone(&shared));
                    let _ = handle_connection(&shared, stream);
                    drop(guard);
                });
            }
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor,
        workers,
        trace_out: cfg.trace_out.clone(),
    })
}
