//! `gnna-serve` — batched multi-tenant GNN inference daemon.
//!
//! ```console
//! $ gnna-serve --smoke --addr 127.0.0.1:7878 &
//! $ curl -s localhost:7878/healthz
//! $ curl -s -d '{"model":"gcn","input":"cora","mode":"cycle"}' localhost:7878/v1/infer
//! $ curl -s localhost:7878/stats
//! $ curl -s -X POST localhost:7878/shutdown
//! ```
//!
//! `--load` switches to the perf-baseline harness: boot an in-process
//! daemon, drive the fixed-seed load schedule batched and unbatched,
//! verify functional bit-identity, and write
//! `BENCH_serve_baseline.json`.

use gnna_bench::Scale;
use gnna_core::config::AcceleratorConfig;
use gnna_serve::loadgen::{run_baseline, run_soak, BaselineOptions, SoakOptions};
use gnna_serve::queue::parse_quota_flag;
use gnna_serve::server::{serve, ServeConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: gnna-serve [options]
  --addr HOST:PORT               bind address (default 127.0.0.1:7878)
  --instances N                  accelerator instances / batch queues
                                 (default 4)
  --max-batch N                  largest coalesced batch (default 16;
                                 1 disables batching)
  --flush-us N                   bounded-latency flush window in
                                 microseconds (default 1000)
  --queue-cap N                  per-instance queue bound; a full queue
                                 answers 429 + Retry-After (default 256)
  --threads N                    shared executor budget for response
                                 assembly (default 1)
  --read-timeout-ms N            per-connection read timeout; an idle
                                 connection is closed after N ms
                                 (default 5000; 0 disables)
  --trace-out PATH               record request/batch spans and write
                                 Chrome trace JSON here on drain
                                 (open in ui.perfetto.dev)
  --tenant-quota [T=]RATE[:BURST[:WEIGHT]]
                                 admission quota: RATE jobs/s with BURST
                                 allowance and DRR WEIGHT for tenant T
                                 (no T= sets the default bucket; RATE 0
                                 = unlimited; repeatable)
  --max-conns N                  live-connection limit; past it new
                                 connections get an immediate 503
                                 (default 0 = unlimited)
  --degrade-watermark N          answer cycle-mode jobs in functional
                                 mode (flagged degraded) when a queue's
                                 backlog is at or past N
                                 (default 0 = off)
  --config cpu-iso-bw|gpu-iso-bw|gpu-iso-flops
                                 Table VI configuration (default gpu-iso-bw)
  --smoke                        scaled-down datasets (CI-speed)
  --load                         run the fixed-seed perf baseline
                                 instead of serving
  --load-jobs N                  baseline jobs per phase (default 64)
  --load-concurrency N           baseline client connections (default 64)
  --min-speedup X                fail the baseline when batched/unbatched
                                 throughput is below X (default 2.0)
  --baseline-out PATH            baseline JSON path
                                 (default BENCH_serve_baseline.json)
  --soak-secs N                  run the sustained mixed-tenant soak for
                                 N seconds instead of serving
  --soak-out PATH                soak JSON path
                                 (default BENCH_serve_soak.json)
  --soak-light-rate X            light tenant arrival rate, jobs/s
                                 (default 8)
  --soak-flood-rate X            flooding tenant attempted rate, jobs/s
                                 (default 60; its quota stays 20/s)
  --soak-max-fairness X          fail when the light tenant's p99 under
                                 flood exceeds X times its isolated p99
                                 (default 2.0)
  --soak-max-rss-growth X        fail when the late-run RSS ceiling
                                 exceeds X times the early-run ceiling
                                 (default 1.25)
  --version                      print the workspace version
  --help                         this message";

struct Args {
    cfg: ServeConfig,
    load: bool,
    load_jobs: usize,
    load_concurrency: usize,
    min_speedup: f64,
    baseline_out: String,
    soak: Option<SoakOptions>,
    soak_out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        scale: Scale::Paper,
        ..ServeConfig::default()
    };
    let mut load = false;
    let mut load_jobs = 64usize;
    let mut load_concurrency = 64usize;
    let mut min_speedup = 2.0f64;
    let mut baseline_out = "BENCH_serve_baseline.json".to_string();
    let mut soak_secs: Option<u64> = None;
    let mut soak_opts = SoakOptions::default();
    let mut soak_out = "BENCH_serve_soak.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--instances" => {
                cfg.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("bad instance count: {e}"))?;
                if cfg.instances == 0 {
                    return Err("--instances must be positive".into());
                }
            }
            "--max-batch" => {
                cfg.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("bad batch size: {e}"))?;
                if cfg.max_batch == 0 {
                    return Err("--max-batch must be positive".into());
                }
            }
            "--flush-us" => {
                let us: u64 = value("--flush-us")?
                    .parse()
                    .map_err(|e| format!("bad flush window: {e}"))?;
                cfg.flush = Duration::from_micros(us);
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("bad queue capacity: {e}"))?;
                if cfg.queue_cap == 0 {
                    return Err("--queue-cap must be positive".into());
                }
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad read timeout: {e}"))?;
                cfg.read_timeout = Duration::from_millis(ms);
            }
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")?),
            "--config" => {
                cfg.accel = match value("--config")?.to_ascii_lowercase().as_str() {
                    "cpu-iso-bw" => AcceleratorConfig::cpu_iso_bandwidth(),
                    "gpu-iso-bw" => AcceleratorConfig::gpu_iso_bandwidth(),
                    "gpu-iso-flops" => AcceleratorConfig::gpu_iso_flops(),
                    other => return Err(format!("unknown config {other}")),
                }
            }
            "--smoke" => cfg.scale = Scale::Smoke,
            "--load" => load = true,
            "--load-jobs" => {
                load_jobs = value("--load-jobs")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
            }
            "--load-concurrency" => {
                load_concurrency = value("--load-concurrency")?
                    .parse()
                    .map_err(|e| format!("bad concurrency: {e}"))?;
            }
            "--min-speedup" => {
                min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("bad speedup: {e}"))?;
            }
            "--baseline-out" => baseline_out = value("--baseline-out")?,
            "--tenant-quota" => {
                let (tenant, spec) = parse_quota_flag(&value("--tenant-quota")?)?;
                match tenant {
                    Some(t) => cfg.policy.tenants.push((t, spec)),
                    None => cfg.policy.default_spec = spec,
                }
            }
            "--max-conns" => {
                cfg.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("bad connection limit: {e}"))?;
            }
            "--degrade-watermark" => {
                cfg.degrade_watermark = value("--degrade-watermark")?
                    .parse()
                    .map_err(|e| format!("bad degrade watermark: {e}"))?;
            }
            "--soak-secs" => {
                let secs: u64 = value("--soak-secs")?
                    .parse()
                    .map_err(|e| format!("bad soak duration: {e}"))?;
                if secs == 0 {
                    return Err("--soak-secs must be positive".into());
                }
                soak_secs = Some(secs);
            }
            "--soak-out" => soak_out = value("--soak-out")?,
            "--soak-light-rate" => {
                soak_opts.light_rate = value("--soak-light-rate")?
                    .parse()
                    .map_err(|e| format!("bad light rate: {e}"))?;
            }
            "--soak-flood-rate" => {
                soak_opts.flood_rate = value("--soak-flood-rate")?
                    .parse()
                    .map_err(|e| format!("bad flood rate: {e}"))?;
            }
            "--soak-max-fairness" => {
                soak_opts.max_fairness = value("--soak-max-fairness")?
                    .parse()
                    .map_err(|e| format!("bad fairness bound: {e}"))?;
            }
            "--soak-max-rss-growth" => {
                soak_opts.max_rss_growth = value("--soak-max-rss-growth")?
                    .parse()
                    .map_err(|e| format!("bad rss growth bound: {e}"))?;
            }
            "--version" | "-V" => {
                println!("gnna-serve {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    let soak = soak_secs.map(|secs| SoakOptions {
        secs,
        accel: cfg.accel.clone(),
        scale: cfg.scale,
        ..soak_opts
    });
    Ok(Args {
        cfg,
        load,
        load_jobs,
        load_concurrency,
        min_speedup,
        baseline_out,
        soak,
        soak_out,
    })
}

fn run(args: Args) -> Result<(), String> {
    if let Some(opts) = &args.soak {
        eprintln!(
            "gnna-serve: soak — {} s mixed-tenant (light {}/s + flood {}/s under a {}/s quota)",
            opts.secs, opts.light_rate, opts.flood_rate, opts.flood_quota
        );
        let doc = run_soak(opts)?;
        std::fs::write(&args.soak_out, format!("{doc}\n")).map_err(|e| e.to_string())?;
        eprintln!("gnna-serve: wrote {}", args.soak_out);
        println!("{doc}");
        return Ok(());
    }
    if args.load {
        let opts = BaselineOptions {
            jobs: args.load_jobs,
            concurrency: args.load_concurrency,
            instances: args.cfg.instances,
            max_batch: args.cfg.max_batch,
            accel: args.cfg.accel.clone(),
            scale: args.cfg.scale,
            min_speedup: args.min_speedup,
        };
        eprintln!(
            "gnna-serve: baseline load — {} jobs × {} clients on {} instances (max batch {})",
            opts.jobs, opts.concurrency, opts.instances, opts.max_batch
        );
        let doc = run_baseline(&opts)?;
        std::fs::write(&args.baseline_out, format!("{doc}\n")).map_err(|e| e.to_string())?;
        eprintln!("gnna-serve: wrote {}", args.baseline_out);
        println!("{doc}");
        return Ok(());
    }
    let handle = serve(args.cfg.clone()).map_err(|e| e.to_string())?;
    eprintln!(
        "gnna-serve: listening on {} — {} instances, max batch {}, flush {:?}, queue cap {} \
         (POST /shutdown to stop)",
        handle.addr(),
        args.cfg.instances,
        args.cfg.max_batch,
        args.cfg.flush,
        args.cfg.queue_cap
    );
    handle.join();
    eprintln!("gnna-serve: drained, bye");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
