//! `gnna-serve` — batched multi-tenant GNN inference daemon.
//!
//! ```console
//! $ gnna-serve --smoke --addr 127.0.0.1:7878 &
//! $ curl -s localhost:7878/healthz
//! $ curl -s -d '{"model":"gcn","input":"cora","mode":"cycle"}' localhost:7878/v1/infer
//! $ curl -s localhost:7878/stats
//! $ curl -s -X POST localhost:7878/shutdown
//! ```
//!
//! `--load` switches to the perf-baseline harness: boot an in-process
//! daemon, drive the fixed-seed load schedule batched and unbatched,
//! verify functional bit-identity, and write
//! `BENCH_serve_baseline.json`.

use gnna_bench::Scale;
use gnna_core::config::AcceleratorConfig;
use gnna_serve::loadgen::{run_baseline, BaselineOptions};
use gnna_serve::server::{serve, ServeConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: gnna-serve [options]
  --addr HOST:PORT               bind address (default 127.0.0.1:7878)
  --instances N                  accelerator instances / batch queues
                                 (default 4)
  --max-batch N                  largest coalesced batch (default 16;
                                 1 disables batching)
  --flush-us N                   bounded-latency flush window in
                                 microseconds (default 1000)
  --queue-cap N                  per-instance queue bound; a full queue
                                 answers 429 + Retry-After (default 256)
  --threads N                    shared executor budget for response
                                 assembly (default 1)
  --read-timeout-ms N            per-connection read timeout; an idle
                                 connection is closed after N ms
                                 (default 5000; 0 disables)
  --trace-out PATH               record request/batch spans and write
                                 Chrome trace JSON here on drain
                                 (open in ui.perfetto.dev)
  --config cpu-iso-bw|gpu-iso-bw|gpu-iso-flops
                                 Table VI configuration (default gpu-iso-bw)
  --smoke                        scaled-down datasets (CI-speed)
  --load                         run the fixed-seed perf baseline
                                 instead of serving
  --load-jobs N                  baseline jobs per phase (default 64)
  --load-concurrency N           baseline client connections (default 64)
  --min-speedup X                fail the baseline when batched/unbatched
                                 throughput is below X (default 2.0)
  --baseline-out PATH            baseline JSON path
                                 (default BENCH_serve_baseline.json)
  --version                      print the workspace version
  --help                         this message";

struct Args {
    cfg: ServeConfig,
    load: bool,
    load_jobs: usize,
    load_concurrency: usize,
    min_speedup: f64,
    baseline_out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        scale: Scale::Paper,
        ..ServeConfig::default()
    };
    let mut load = false;
    let mut load_jobs = 64usize;
    let mut load_concurrency = 64usize;
    let mut min_speedup = 2.0f64;
    let mut baseline_out = "BENCH_serve_baseline.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--instances" => {
                cfg.instances = value("--instances")?
                    .parse()
                    .map_err(|e| format!("bad instance count: {e}"))?;
                if cfg.instances == 0 {
                    return Err("--instances must be positive".into());
                }
            }
            "--max-batch" => {
                cfg.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("bad batch size: {e}"))?;
                if cfg.max_batch == 0 {
                    return Err("--max-batch must be positive".into());
                }
            }
            "--flush-us" => {
                let us: u64 = value("--flush-us")?
                    .parse()
                    .map_err(|e| format!("bad flush window: {e}"))?;
                cfg.flush = Duration::from_micros(us);
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("bad queue capacity: {e}"))?;
                if cfg.queue_cap == 0 {
                    return Err("--queue-cap must be positive".into());
                }
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad read timeout: {e}"))?;
                cfg.read_timeout = Duration::from_millis(ms);
            }
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")?),
            "--config" => {
                cfg.accel = match value("--config")?.to_ascii_lowercase().as_str() {
                    "cpu-iso-bw" => AcceleratorConfig::cpu_iso_bandwidth(),
                    "gpu-iso-bw" => AcceleratorConfig::gpu_iso_bandwidth(),
                    "gpu-iso-flops" => AcceleratorConfig::gpu_iso_flops(),
                    other => return Err(format!("unknown config {other}")),
                }
            }
            "--smoke" => cfg.scale = Scale::Smoke,
            "--load" => load = true,
            "--load-jobs" => {
                load_jobs = value("--load-jobs")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
            }
            "--load-concurrency" => {
                load_concurrency = value("--load-concurrency")?
                    .parse()
                    .map_err(|e| format!("bad concurrency: {e}"))?;
            }
            "--min-speedup" => {
                min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("bad speedup: {e}"))?;
            }
            "--baseline-out" => baseline_out = value("--baseline-out")?,
            "--version" | "-V" => {
                println!("gnna-serve {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Args {
        cfg,
        load,
        load_jobs,
        load_concurrency,
        min_speedup,
        baseline_out,
    })
}

fn run(args: Args) -> Result<(), String> {
    if args.load {
        let opts = BaselineOptions {
            jobs: args.load_jobs,
            concurrency: args.load_concurrency,
            instances: args.cfg.instances,
            max_batch: args.cfg.max_batch,
            accel: args.cfg.accel.clone(),
            scale: args.cfg.scale,
            min_speedup: args.min_speedup,
        };
        eprintln!(
            "gnna-serve: baseline load — {} jobs × {} clients on {} instances (max batch {})",
            opts.jobs, opts.concurrency, opts.instances, opts.max_batch
        );
        let doc = run_baseline(&opts)?;
        std::fs::write(&args.baseline_out, format!("{doc}\n")).map_err(|e| e.to_string())?;
        eprintln!("gnna-serve: wrote {}", args.baseline_out);
        println!("{doc}");
        return Ok(());
    }
    let handle = serve(args.cfg.clone()).map_err(|e| e.to_string())?;
    eprintln!(
        "gnna-serve: listening on {} — {} instances, max batch {}, flush {:?}, queue cap {} \
         (POST /shutdown to stop)",
        handle.addr(),
        args.cfg.instances,
        args.cfg.max_batch,
        args.cfg.flush,
        args.cfg.queue_cap
    );
    handle.join();
    eprintln!("gnna-serve: drained, bye");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
