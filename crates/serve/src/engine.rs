//! Batch execution: turns a popped batch into per-job outcomes.
//!
//! One batch = one compiled program over one union graph. Functional
//! jobs answer straight from the `gnna-models` reference rows (cached
//! per dataset, computed per inline graph), so their responses are
//! bit-exact however they were batched. Cycle-accurate jobs share a
//! single `System` built over every graph instance in the batch — the
//! config/layout/issue fixed cost is paid once, which is where the
//! batching throughput win on a serving workload comes from — and get
//! per-job telemetry: batch cycles, an exact largest-remainder energy
//! split, a stall-cause summary, and an accuracy grade against the
//! reference (NoC arrival order perturbs FP aggregation order, so
//! simulated rows are graded, not promised bit-equal).
//!
//! Per-job response assembly (accuracy comparison + row serialization)
//! fans out on the shared [`gnna_executor::Executor`], whose in-order
//! emission keeps outcome order aligned with batch order.

use crate::protocol::{error_body, push_rows};
use crate::protocol::{ExecMode, InlineGraph, JobInput, JobRequest};
use crate::queue::{BatchKey, Job, JobOutcome};
use crate::trace::{format_span_id, JobSpan, SpanTracer};
use gnna_bench::accuracy::compare_rows;
use gnna_bench::{build_case, BenchCase, Scale, MODEL_SEED};
use gnna_core::config::AcceleratorConfig;
use gnna_core::energy::EnergyModel;
use gnna_core::layers::{compile_gat, compile_gcn, CompiledProgram};
use gnna_core::stats::{SimReport, StallCause};
use gnna_core::system::System;
use gnna_executor::Executor;
use gnna_graph::datasets::GraphInstance;
use gnna_graph::CsrGraph;
use gnna_models::{Gat, Gcn, GcnNorm, ModelKind};
use gnna_telemetry::json;
use gnna_tensor::Matrix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A cached named-dataset case: the benchmark pair plus the reference
/// row range of every dataset instance.
struct NamedCase {
    case: BenchCase,
    /// `(start, len)` into `case.reference` per instance.
    ranges: Vec<(usize, usize)>,
}

/// A cached inline-graph model (one per `(model, in, out)` width pair):
/// the functional model and its compiled program.
struct InlineCase {
    model: InlineModel,
    program: CompiledProgram,
}

enum InlineModel {
    Gcn(Gcn),
    Gat(Gat),
}

impl InlineModel {
    fn forward(&self, graph: &CsrGraph, x: &Matrix) -> Result<Matrix, String> {
        match self {
            InlineModel::Gcn(m) => m.forward(graph, x).map_err(|e| e.to_string()),
            InlineModel::Gat(m) => m.forward(graph, x).map_err(|e| e.to_string()),
        }
    }
}

/// Splits `total` across `weights` exactly (largest-remainder method):
/// the parts sum to `total`, and a job's share is proportional to its
/// weight to within one unit. Zero total weight splits evenly.
pub fn split_exact(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let wsum: u64 = weights.iter().sum();
    let weights: Vec<u64> = if wsum == 0 {
        vec![1; weights.len()]
    } else {
        weights.to_vec()
    };
    let wsum: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut parts: Vec<u64> = Vec::with_capacity(weights.len());
    let mut rems: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let num = total as u128 * w as u128;
        let part = (num / wsum) as u64;
        parts.push(part);
        assigned += part;
        rems.push((num % wsum, i));
    }
    // Hand the leftover units to the largest remainders (index order
    // breaks ties, so the split is deterministic).
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = total - assigned;
    for &(_, i) in &rems {
        if leftover == 0 {
            break;
        }
        parts[i] += 1;
        leftover -= 1;
    }
    parts
}

/// Sums per-tile GPE stall counters by cause across the whole report.
fn stall_totals(report: &SimReport) -> [u64; StallCause::COUNT] {
    let mut totals = [0u64; StallCause::COUNT];
    for tile in &report.per_tile {
        for (t, s) in totals.iter_mut().zip(tile.gpe_stall_by_cause.iter()) {
            *t += s;
        }
    }
    totals
}

/// The execution engine: case caches plus the shared executor.
pub struct Engine {
    config: AcceleratorConfig,
    scale: Scale,
    executor: Executor,
    tracer: Option<Arc<SpanTracer>>,
    named: Mutex<HashMap<(ModelKind, &'static str), Arc<NamedCase>>>,
    inline: Mutex<HashMap<(ModelKind, usize, usize), Arc<InlineCase>>>,
}

/// Everything known about one job after execution, before serialization.
struct Slot {
    request: JobRequest,
    span_id: u64,
    enqueued: Instant,
    batched: Instant,
    queue_us: u64,
    coalesce_us: u64,
    rows: Vec<Vec<f32>>,
    reference: Vec<Vec<f32>>,
    energy_pj: u64,
    /// The degrade watermark flipped this cycle job to functional
    /// execution; the response is flagged `"degraded":true`.
    degraded: bool,
}

impl Engine {
    /// An engine simulating on `config` at `scale`, assembling responses
    /// on `executor`.
    pub fn new(config: AcceleratorConfig, scale: Scale, executor: Executor) -> Self {
        Engine {
            config,
            scale,
            executor,
            tracer: None,
            named: Mutex::new(HashMap::new()),
            inline: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a request-span tracer: every executed batch records a
    /// batch span plus per-job stage spans. `None` (the default) keeps
    /// the execution path free of tracer locks.
    pub fn with_tracer(mut self, tracer: Option<Arc<SpanTracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The accelerator configuration jobs simulate on.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    fn named_case(&self, model: ModelKind, input: &'static str) -> Result<Arc<NamedCase>, String> {
        if let Some(c) = self
            .named
            .lock()
            .expect("cache poisoned")
            .get(&(model, input))
        {
            return Ok(Arc::clone(c));
        }
        // Built outside the lock: dataset + model construction can take
        // a while and other keys shouldn't wait on it.
        let case = build_case(model, input, self.scale).map_err(|e| e.to_string())?;
        let mut ranges = Vec::with_capacity(case.dataset.instances.len());
        let mut start = 0usize;
        for inst in &case.dataset.instances {
            let len = if model == ModelKind::Mpnn {
                1 // graph-readout model: one row per instance
            } else {
                inst.x.rows()
            };
            ranges.push((start, len));
            start += len;
        }
        let entry = Arc::new(NamedCase { case, ranges });
        let mut cache = self.named.lock().expect("cache poisoned");
        Ok(Arc::clone(cache.entry((model, input)).or_insert(entry)))
    }

    fn inline_case(
        &self,
        model: ModelKind,
        in_features: usize,
        out_features: usize,
    ) -> Result<Arc<InlineCase>, String> {
        let key = (model, in_features, out_features);
        if let Some(c) = self.inline.lock().expect("cache poisoned").get(&key) {
            return Ok(Arc::clone(c));
        }
        // Same hyper-parameters and seed as the benchmark models, so an
        // inline Cora-shaped graph answers exactly like the named one.
        let entry = match model {
            ModelKind::Gcn => {
                let m = Gcn::for_dataset(in_features, 16, out_features, MODEL_SEED)
                    .map_err(|e| e.to_string())?
                    .with_norm(GcnNorm::Mean);
                let program = compile_gcn(&m).map_err(|e| e.to_string())?;
                InlineCase {
                    model: InlineModel::Gcn(m),
                    program,
                }
            }
            ModelKind::Gat => {
                let m = Gat::for_dataset(in_features, out_features, MODEL_SEED)
                    .map_err(|e| e.to_string())?;
                let program = compile_gat(&m).map_err(|e| e.to_string())?;
                InlineCase {
                    model: InlineModel::Gat(m),
                    program,
                }
            }
            other => return Err(format!("inline graphs do not support {}", other.name())),
        };
        let entry = Arc::new(entry);
        let mut cache = self.inline.lock().expect("cache poisoned");
        Ok(Arc::clone(cache.entry(key).or_insert(entry)))
    }

    fn inline_instance(g: &InlineGraph) -> Result<GraphInstance, String> {
        let graph =
            CsrGraph::from_undirected_edges(g.num_vertices, &g.edges).map_err(|e| e.to_string())?;
        let rows: Vec<&[f32]> = g.features.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&rows).map_err(|e| e.to_string())?;
        Ok(GraphInstance {
            graph,
            x,
            edge_features: None,
        })
    }

    /// Executes one batch (all jobs share a [`BatchKey`]) on accelerator
    /// `instance` and sends each job its outcome over its response
    /// channel.
    pub fn execute_batch(&self, instance: usize, batch: Vec<Job>) {
        if batch.is_empty() {
            return;
        }
        let exec_start = Instant::now();
        // The batch shares an *effective* key: a degraded cycle job
        // batches — and executes — as a functional one.
        let key = BatchKey::effective(&batch[0]);
        let mode = match key {
            BatchKey::Named(.., m) | BatchKey::Inline(.., m) => m,
        };
        debug_assert!(batch.iter().all(|j| BatchKey::effective(j) == key));

        // Resolve the shared case; a failure here fails the whole batch.
        enum Case {
            Named(Arc<NamedCase>),
            Inline(Arc<InlineCase>),
        }
        let case = match key {
            BatchKey::Named(model, input, _) => self.named_case(model, input).map(Case::Named),
            BatchKey::Inline(model, f, out, _) => self.inline_case(model, f, out).map(Case::Inline),
        };
        let case = match case {
            Ok(c) => c,
            Err(msg) => {
                let body = error_body(&msg);
                for job in batch {
                    let _ = job.respond.send(JobOutcome {
                        status: 400,
                        body: body.clone(),
                    });
                }
                return;
            }
        };

        // Admit each job into a slot: build its graph instance and its
        // functional reference. Invalid jobs answer 400 immediately and
        // drop out of the batch.
        let mut slots: Vec<Slot> = Vec::with_capacity(batch.len());
        let mut responders = Vec::with_capacity(batch.len());
        let mut instances: Vec<GraphInstance> = Vec::with_capacity(batch.len());
        for job in batch {
            // Stage boundaries: queue wait ends when the worker adopted
            // the job into the batch; the coalesce window runs from
            // there to execution start.
            let batched = job.batched.unwrap_or(exec_start);
            let queue_us = batched.duration_since(job.enqueued).as_micros() as u64;
            let coalesce_us = exec_start.saturating_duration_since(batched).as_micros() as u64;
            let prepared = match (&case, &job.request.input) {
                (Case::Named(nc), JobInput::Named { instance, .. }) => {
                    match nc.ranges.get(*instance) {
                        Some(&(start, len)) => Ok((
                            nc.case.dataset.instances[*instance].clone(),
                            nc.case.reference[start..start + len].to_vec(),
                        )),
                        None => Err(format!(
                            "instance {instance} out of range ({} available)",
                            nc.ranges.len()
                        )),
                    }
                }
                (Case::Inline(ic), JobInput::Inline(g)) => {
                    Self::inline_instance(g).and_then(|inst| {
                        let r = ic.model.forward(&inst.graph, &inst.x)?;
                        let reference =
                            (0..r.rows()).map(|i| r.row(i).to_vec()).collect::<Vec<_>>();
                        Ok((inst, reference))
                    })
                }
                // BatchKey::of puts named inputs in named batches and
                // inline inputs in inline batches.
                _ => Err("job input does not match its batch key".to_string()),
            };
            match prepared {
                Ok((inst, reference)) => {
                    instances.push(inst);
                    responders.push(job.respond);
                    slots.push(Slot {
                        request: job.request,
                        span_id: job.span_id,
                        enqueued: job.enqueued,
                        batched,
                        queue_us,
                        coalesce_us,
                        rows: Vec::new(),
                        reference,
                        energy_pj: 0,
                        degraded: job.degraded,
                    });
                }
                Err(msg) => {
                    let _ = job.respond.send(JobOutcome {
                        status: 400,
                        body: error_body(&msg),
                    });
                }
            }
        }
        if slots.is_empty() {
            return;
        }
        let batch_size = slots.len();

        // Execute. Functional mode answers from the reference; cycle
        // mode runs one union simulation for the whole batch.
        let mut report: Option<SimReport> = None;
        match mode {
            ExecMode::Functional => {
                for slot in &mut slots {
                    slot.rows = slot.reference.clone();
                }
            }
            ExecMode::CycleAccurate => {
                let program = match &case {
                    Case::Named(nc) => nc.case.program.clone(),
                    Case::Inline(ic) => ic.program.clone(),
                };
                let run = System::new(&self.config, &instances, program)
                    .and_then(|mut sys| sys.run().map(|r| (sys, r)));
                match run {
                    Ok((sys, r)) => {
                        let mut extract_err = None;
                        for (i, slot) in slots.iter_mut().enumerate() {
                            match sys.output_matrix(i) {
                                Ok(m) => {
                                    slot.rows = (0..m.rows()).map(|j| m.row(j).to_vec()).collect();
                                }
                                Err(e) => {
                                    extract_err = Some(e.to_string());
                                    break;
                                }
                            }
                        }
                        if let Some(msg) = extract_err {
                            let body = error_body(&msg);
                            for tx in responders {
                                let _ = tx.send(JobOutcome {
                                    status: 500,
                                    body: body.clone(),
                                });
                            }
                            return;
                        }
                        // Exact energy attribution: per-job shares sum
                        // to the batch total, weighted by output size.
                        let total_pj = EnergyModel::default().total_pj(&r);
                        let weights: Vec<u64> = slots
                            .iter()
                            .map(|s| s.rows.iter().map(|row| row.len() as u64).sum::<u64>())
                            .collect();
                        for (slot, pj) in slots.iter_mut().zip(split_exact(total_pj, &weights)) {
                            slot.energy_pj = pj;
                        }
                        report = Some(r);
                    }
                    Err(e) => {
                        let body = error_body(&e.to_string());
                        for tx in responders {
                            let _ = tx.send(JobOutcome {
                                status: 500,
                                body: body.clone(),
                            });
                        }
                        return;
                    }
                }
            }
        }

        let sim_done = Instant::now();
        let exec_us = sim_done.duration_since(exec_start).as_micros() as u64;
        let stalls = report.as_ref().map(stall_totals);
        let (total_cycles, config_cycles) = report
            .as_ref()
            .map_or((0, 0), |r| (r.total_cycles, r.config_cycles));

        // Fan response assembly (accuracy grading + serialization) out
        // on the shared executor; in-order emission keeps slot order.
        let assembled = self.executor.map_ordered(slots.len(), |i| {
            let slot = &slots[i];
            let respond_us = sim_done.elapsed().as_micros() as u64;
            let mut body = String::with_capacity(256 + slot.rows.len() * 64);
            body.push_str("{\"id\":\"");
            json::escape_into(&mut body, &slot.request.id);
            body.push_str("\",\"status\":\"ok\",\"model\":\"");
            body.push_str(slot.request.model.name());
            body.push_str("\",\"input\":\"");
            match &slot.request.input {
                JobInput::Named { input, instance } => {
                    body.push_str(input);
                    body.push_str(&format!("\",\"instance\":{instance},"));
                }
                JobInput::Inline(_) => body.push_str("inline\","),
            }
            // A degraded job reports the mode it actually executed in
            // (functional) and is flagged; every other job's body is
            // byte-identical to the pre-degradation wire format.
            body.push_str("\"mode\":\"");
            body.push_str(mode.as_str());
            body.push('"');
            if slot.degraded {
                body.push_str(",\"degraded\":true");
            }
            body.push_str(",\"rows\":");
            push_rows(&mut body, &slot.rows);
            body.push_str(&format!(
                ",\"telemetry\":{{\"batch_size\":{batch_size},\"span_id\":\"{}\",\
                 \"queue_us\":{},\"coalesce_us\":{},\"simulate_us\":{exec_us},\
                 \"respond_us\":{respond_us},\"exec_us\":{exec_us},\
                 \"total_cycles\":{total_cycles},\"config_cycles\":{config_cycles},\"energy_pj\":{}",
                format_span_id(slot.span_id),
                slot.queue_us,
                slot.coalesce_us,
                slot.energy_pj
            ));
            if let Some(stalls) = &stalls {
                body.push_str(",\"stalls\":{");
                for (i, cause) in StallCause::ALL.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!("\"{}\":{}", cause.as_str(), stalls[cause.index()]));
                }
                body.push('}');
            }
            body.push('}');
            if slot.request.mode == ExecMode::CycleAccurate && !slot.degraded {
                let acc = compare_rows(&slot.reference, &slot.rows)
                    .map_err(|e| e.to_string())?;
                body.push_str(&format!(
                    ",\"accuracy\":{{\"max_rel_err\":{},\"mean_rel_err\":{},\
                     \"label_flips\":{},\"nonfinite\":{}}}",
                    json::number(acc.max_rel_err),
                    json::number(acc.mean_rel_err),
                    acc.label_flips,
                    acc.nonfinite
                ));
            }
            body.push('}');
            Ok::<_, String>(body)
        });

        match assembled {
            Ok(bodies) => {
                for (tx, body) in responders.into_iter().zip(bodies) {
                    let _ = tx.send(JobOutcome { status: 200, body });
                }
            }
            Err(e) => {
                let body = error_body(&e.to_string());
                for tx in responders {
                    let _ = tx.send(JobOutcome {
                        status: 500,
                        body: body.clone(),
                    });
                }
            }
        }

        if let Some(tracer) = &self.tracer {
            let responded = Instant::now();
            let spans: Vec<JobSpan> = slots
                .iter()
                .map(|s| JobSpan {
                    span_id: s.span_id,
                    enqueued: s.enqueued,
                    batched: s.batched,
                    exec_start,
                    sim_done,
                    responded,
                })
                .collect();
            tracer.record_batch(instance, exec_start, responded, &spans);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_exact_sums_and_tracks_weights() {
        assert_eq!(split_exact(10, &[1, 1, 1]).iter().sum::<u64>(), 10);
        assert_eq!(split_exact(10, &[1, 1]), vec![5, 5]);
        assert_eq!(split_exact(7, &[0, 0]), vec![4, 3]); // zero weights → even-ish
        let parts = split_exact(1_000_001, &[3, 1, 1]);
        assert_eq!(parts.iter().sum::<u64>(), 1_000_001);
        assert!(parts[0] > parts[1]);
        assert_eq!(split_exact(5, &[]), Vec::<u64>::new());
        // Deterministic: same inputs, same split.
        assert_eq!(split_exact(97, &[2, 3, 5]), split_exact(97, &[2, 3, 5]));
    }
}
