//! Fixed-seed load harness: drives a running daemon with a
//! deterministic job schedule, measures sustained throughput and
//! latency quantiles client-side, and captures the raw `rows` bytes of
//! every response so callers can assert bit-identity (batched vs
//! unbatched vs the functional reference).
//!
//! [`run_baseline`] is the perf-trajectory entry point behind
//! `gnna-serve --load`: a batched phase and a batch-size-1 phase over
//! the same schedule, a functional bit-identity check, a backpressure
//! probe, and a `simulate_traced_opts` cycles/sec measurement — all
//! rendered into the `BENCH_serve_baseline.json` document.
//!
//! [`run_soak`] (behind `gnna-serve --soak-secs`) is the sustained
//! overload harness: open-loop mixed-tenant arrivals — one well-behaved
//! tenant, one quota-limited flooder — with client-side capped
//! exponential backoff (deterministic LCG jitter) honouring
//! `Retry-After`. It measures the light tenant's p99 isolated and under
//! flood (the fairness ratio the DRR scheduler must hold), tracks the
//! daemon's RSS ceiling over the run, and renders everything into
//! `BENCH_serve_soak.json`.

use crate::http::{read_response, Response};
use crate::protocol::{push_rows, ExecMode};
use crate::queue::{QuotaSpec, TenantPolicy};
use crate::server::{serve, ServeConfig};
use gnna_bench::{build_case, simulate_traced_opts, Scale, TraceOptions};
use gnna_core::config::AcceleratorConfig;
use gnna_models::ModelKind;
use gnna_telemetry::json::{self, JsonValue};
use gnna_telemetry::TraceLevel;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A deterministic load schedule.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Total jobs to submit.
    pub jobs: usize,
    /// Concurrent client connections (job `j` goes to client `j %
    /// concurrency` — fixed, so every run submits the same schedule).
    pub concurrency: usize,
    /// Model for every job.
    pub model: ModelKind,
    /// Dataset name for every job (canonical, e.g. `"QM9_1000"`).
    pub input: &'static str,
    /// Dataset instance count to cycle through (job `j` uses instance
    /// `j % dataset_instances`).
    pub dataset_instances: usize,
    /// Execution mode for every job.
    pub mode: ExecMode,
}

/// Client-side measurements of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs answered 200.
    pub ok: usize,
    /// 429 rejections observed (each is retried until accepted).
    pub rejected: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Sustained completed requests per second.
    pub req_per_s: f64,
    /// Client-observed latency quantiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

/// A load run's outcome: the measurements plus the raw `rows` bytes of
/// each response keyed by job id (for bit-identity assertions).
#[derive(Debug)]
pub struct LoadOutcome {
    /// Measurements.
    pub report: LoadReport,
    /// `job id → raw "rows" JSON substring` from each 200 response.
    pub rows_by_id: BTreeMap<String, String>,
}

/// Sends one request over an open connection and reads the response.
///
/// # Errors
///
/// I/O and framing errors.
pub fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: gnna-serve\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))
}

/// Extracts the raw `"rows":[...]` value bytes from a response body
/// without reparsing floats (reparsing would destroy bit-identity).
pub fn raw_rows(body: &str) -> Option<&str> {
    let start = body.find("\"rows\":")? + "\"rows\":".len();
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

fn job_body(spec: &LoadSpec, j: usize) -> String {
    format!(
        "{{\"id\":\"job{j}\",\"model\":\"{}\",\"input\":\"{}\",\"instance\":{},\"mode\":\"{}\"}}",
        spec.model.name().to_ascii_lowercase(),
        spec.input.to_ascii_lowercase(),
        j % spec.dataset_instances.max(1),
        spec.mode.as_str()
    )
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// One client thread's takings: (id, raw rows) pairs, per-job
/// latencies in µs, and the 429-retry count.
type ClientTake = (Vec<(String, String)>, Vec<u64>, usize);

/// Runs the load schedule against a daemon at `addr`. 429 responses are
/// retried after the advertised `Retry-After` (counted, not failed).
///
/// # Errors
///
/// The first client I/O error or non-(200|429) response.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> Result<LoadOutcome, String> {
    let concurrency = spec.concurrency.max(1);
    let started = Instant::now();
    let results: Vec<Result<ClientTake, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for c in 0..concurrency {
            let spec = &spec;
            handles.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                let mut rows = Vec::new();
                let mut latencies = Vec::new();
                let mut rejected = 0usize;
                let mut j = c;
                while j < spec.jobs {
                    let body = job_body(spec, j);
                    let sent = Instant::now();
                    let resp = roundtrip(&mut stream, &mut reader, "POST", "/v1/infer", &body)
                        .map_err(|e| e.to_string())?;
                    match resp.status {
                        200 => {
                            latencies.push(sent.elapsed().as_micros() as u64);
                            let r = raw_rows(&resp.body)
                                .ok_or_else(|| format!("no rows in: {}", resp.body))?;
                            rows.push((format!("job{j}"), r.to_string()));
                            j += concurrency;
                        }
                        429 => {
                            rejected += 1;
                            let wait = resp
                                .header("retry-after")
                                .and_then(|v| v.parse::<u64>().ok())
                                .unwrap_or(1)
                                .min(1);
                            std::thread::sleep(Duration::from_millis(wait * 20));
                        }
                        other => return Err(format!("job{j}: HTTP {other}: {}", resp.body)),
                    }
                }
                Ok((rows, latencies, rejected))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);

    let mut rows_by_id = BTreeMap::new();
    let mut latencies = Vec::with_capacity(spec.jobs);
    let mut rejected = 0usize;
    for r in results {
        let (rows, lat, rej) = r?;
        rows_by_id.extend(rows);
        latencies.extend(lat);
        rejected += rej;
    }
    latencies.sort_unstable();
    let ok = latencies.len();
    Ok(LoadOutcome {
        report: LoadReport {
            jobs: spec.jobs,
            ok,
            rejected,
            wall_s,
            req_per_s: ok as f64 / wall_s,
            p50_us: quantile(&latencies, 0.50),
            p95_us: quantile(&latencies, 0.95),
            p99_us: quantile(&latencies, 0.99),
        },
        rows_by_id,
    })
}

/// Fetches and parses `/stats` from a running daemon.
///
/// # Errors
///
/// I/O or JSON errors.
pub fn fetch_stats(addr: SocketAddr) -> Result<JsonValue, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let resp =
        roundtrip(&mut stream, &mut reader, "GET", "/stats", "").map_err(|e| e.to_string())?;
    json::parse(&resp.body)
}

/// Asks a daemon to shut down and waits for its threads to exit.
pub fn shutdown_and_join(handle: crate::server::ServerHandle) {
    handle.shutdown();
    handle.join();
}

/// Knobs for the perf-baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Jobs per phase (acceptance floor: 64).
    pub jobs: usize,
    /// Concurrent clients (acceptance floor: 64).
    pub concurrency: usize,
    /// Accelerator instances the daemon runs (acceptance floor: 4).
    pub instances: usize,
    /// Batched phase's max batch.
    pub max_batch: usize,
    /// Accelerator configuration.
    pub accel: AcceleratorConfig,
    /// Dataset scale.
    pub scale: Scale,
    /// Fail the run when batched/unbatched throughput falls below this.
    pub min_speedup: f64,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            jobs: 64,
            concurrency: 64,
            instances: 4,
            max_batch: 16,
            accel: AcceleratorConfig::gpu_iso_bandwidth(),
            scale: Scale::Smoke,
            min_speedup: 2.0,
        }
    }
}

fn boot(opts: &BaselineOptions, max_batch: usize) -> Result<crate::server::ServerHandle, String> {
    serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        instances: opts.instances,
        max_batch,
        flush: Duration::from_millis(1),
        queue_cap: 256,
        threads: 1,
        accel: opts.accel.clone(),
        scale: opts.scale,
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())
}

fn phase_json(name: &str, r: &LoadReport, batches: u64, max_batch_observed: u64) -> String {
    format!(
        "\"{name}\":{{\"jobs\":{},\"ok\":{},\"rejected_429\":{},\"wall_s\":{},\
         \"req_per_s\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
         \"batches\":{batches},\"max_batch_observed\":{max_batch_observed}}}",
        r.jobs,
        r.ok,
        r.rejected,
        json::number(r.wall_s),
        json::number(r.req_per_s),
        r.p50_us,
        r.p95_us,
        r.p99_us
    )
}

fn stat_u64(stats: &JsonValue, name: &str) -> u64 {
    stats.get(name).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// The full baseline campaign. The workload is the batching-friendliest
/// benchmark pair (MPNN over the QM9 molecule set: many small graphs,
/// per-run fixed cost dominates), cycle-accurate for the throughput
/// phases and functional for the bit-identity phase.
///
/// # Errors
///
/// Any phase failure, a bit-identity violation, or a speedup below
/// `min_speedup`.
pub fn run_baseline(opts: &BaselineOptions) -> Result<String, String> {
    let case = build_case(ModelKind::Mpnn, "QM9_1000", opts.scale).map_err(|e| e.to_string())?;
    let dataset_instances = case.dataset.instances.len();

    // Phase 1 — functional bit-identity: every served row must be the
    // exact reference bytes, batched or not.
    let functional = LoadSpec {
        jobs: opts.jobs,
        concurrency: opts.concurrency,
        model: ModelKind::Mpnn,
        input: "QM9_1000",
        dataset_instances,
        mode: ExecMode::Functional,
    };
    let batched_server = boot(opts, opts.max_batch)?;
    let f_batched = run_load(batched_server.addr(), &functional)?;
    shutdown_and_join(batched_server);
    for (id, rows) in &f_batched.rows_by_id {
        let j: usize = id
            .trim_start_matches("job")
            .parse()
            .map_err(|e| format!("{e}"))?;
        let inst = j % dataset_instances;
        let mut expect = String::new();
        // MPNN is a readout model: one reference row per molecule.
        push_rows(&mut expect, &[case.reference[inst].clone()]);
        if *rows != expect {
            return Err(format!(
                "functional response for {id} is not bit-identical to the reference"
            ));
        }
    }

    // Phase 2 — batched cycle-accurate throughput.
    let cycle = LoadSpec {
        mode: ExecMode::CycleAccurate,
        ..functional.clone()
    };
    let server = boot(opts, opts.max_batch)?;
    let c_batched = run_load(server.addr(), &cycle)?;
    let batched_stats = fetch_stats(server.addr())?;
    shutdown_and_join(server);

    // Phase 3 — batch-size-1 cycle-accurate throughput (the control).
    let server = boot(opts, 1)?;
    let c_serial = run_load(server.addr(), &cycle)?;
    let serial_stats = fetch_stats(server.addr())?;
    shutdown_and_join(server);

    let speedup = c_batched.report.req_per_s / c_serial.report.req_per_s.max(1e-9);
    if speedup < opts.min_speedup {
        return Err(format!(
            "batching speedup {speedup:.2}x is below the required {:.2}x \
             (batched {:.1} req/s vs serial {:.1} req/s)",
            opts.min_speedup, c_batched.report.req_per_s, c_serial.report.req_per_s
        ));
    }

    // Phase 4 — raw simulator cycles/sec on the reference config, so
    // the serving numbers sit next to a simulator-only baseline.
    let sim_case = build_case(ModelKind::Gcn, "Cora", opts.scale).map_err(|e| e.to_string())?;
    let sim_start = Instant::now();
    let traced = simulate_traced_opts(
        &sim_case,
        &opts.accel,
        &TraceOptions::at_level(TraceLevel::Off),
    )
    .map_err(|e| e.to_string())?;
    let sim_wall = sim_start.elapsed().as_secs_f64().max(1e-9);

    Ok(format!(
        "{{\n  \"workload\":{{\"model\":\"MPNN\",\"input\":\"QM9_1000\",\"scale\":\"smoke\",\
         \"jobs\":{},\"concurrency\":{},\"instances\":{},\"max_batch\":{}}},\n  {},\n  {},\n  \
         \"batching_speedup\":{},\n  \"functional_bit_identity\":\"verified\",\n  \
         \"simulator\":{{\"model\":\"GCN\",\"input\":\"Cora\",\"config\":\"{}\",\
         \"total_cycles\":{},\"wall_s\":{},\"cycles_per_s\":{}}}\n}}",
        opts.jobs,
        opts.concurrency,
        opts.instances,
        opts.max_batch,
        phase_json(
            "batched",
            &c_batched.report,
            stat_u64(&batched_stats, "serve.batches"),
            stat_u64(&batched_stats, "serve.max_batch_observed"),
        ),
        phase_json(
            "unbatched",
            &c_serial.report,
            stat_u64(&serial_stats, "serve.batches"),
            stat_u64(&serial_stats, "serve.max_batch_observed"),
        ),
        json::number(speedup),
        opts.accel.name,
        traced.report.total_cycles,
        json::number(sim_wall),
        json::number(traced.report.total_cycles as f64 / sim_wall),
    ))
}

/// Knobs for the sustained soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Mixed-phase duration, seconds.
    pub secs: u64,
    /// Light tenant's open-loop arrival rate, jobs/s.
    pub light_rate: f64,
    /// Flooding tenant's attempted arrival rate, jobs/s (its admitted
    /// rate is clamped by the quota below).
    pub flood_rate: f64,
    /// Flooding tenant's admission quota, jobs/s.
    pub flood_quota: f64,
    /// Accelerator instances (1 keeps both tenants contending on one
    /// queue, which is the property under test).
    pub instances: usize,
    /// Largest coalesced batch.
    pub max_batch: usize,
    /// Per-instance queue bound.
    pub queue_cap: usize,
    /// Accelerator configuration.
    pub accel: AcceleratorConfig,
    /// Dataset scale.
    pub scale: Scale,
    /// Fail when the light tenant's mixed-phase p99 exceeds this
    /// multiple of its isolated p99.
    pub max_fairness: f64,
    /// Fail when the late-run RSS ceiling exceeds this multiple of the
    /// early-run ceiling (memory must stay flat under sustained load).
    pub max_rss_growth: f64,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            secs: 45,
            light_rate: 8.0,
            flood_rate: 60.0,
            flood_quota: 20.0,
            instances: 1,
            max_batch: 16,
            queue_cap: 64,
            accel: AcceleratorConfig::gpu_iso_bandwidth(),
            scale: Scale::Smoke,
            max_fairness: 2.0,
            max_rss_growth: 1.25,
        }
    }
}

/// Deterministic 64-bit LCG step (Knuth constants); the top bits feed
/// the jitter so soak schedules are reproducible.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Multiplicative jitter in `[0.5, 1.5)`.
fn jitter(state: &mut u64) -> f64 {
    0.5 + (lcg_next(state) % 1000) as f64 / 1000.0
}

/// One soak worker's client-side tallies.
#[derive(Debug, Default, Clone)]
struct SoakTake {
    sent: usize,
    ok: usize,
    backoffs_429: usize,
    dropped: usize,
    io_errors: usize,
    latencies_us: Vec<u64>,
}

impl SoakTake {
    fn merge(&mut self, other: SoakTake) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.backoffs_429 += other.backoffs_429;
        self.dropped += other.dropped;
        self.io_errors += other.io_errors;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Longest a soak client honours one `Retry-After`, milliseconds (the
/// header is seconds-granular; a mini-soak cannot idle that long).
const SOAK_BACKOFF_CAP_MS: u64 = 400;
/// 429 retries before a soak client drops the job.
const SOAK_MAX_RETRIES: usize = 3;

/// One open-loop soak worker: paced arrivals until `end`, capped
/// exponential backoff with jitter on 429, reconnect-once on I/O
/// errors.
fn soak_worker(
    addr: SocketAddr,
    tenant: &str,
    model: &str,
    rate_per_s: f64,
    end: Instant,
    seed: u64,
) -> SoakTake {
    let mut take = SoakTake::default();
    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    let interarrival = Duration::from_secs_f64(1.0 / rate_per_s.max(0.1));
    let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
    let mut due = Instant::now();
    let mut job = 0usize;
    while Instant::now() < end {
        // Open-loop pacing with deterministic jitter: the schedule does
        // not slow down because the server is slow.
        due += interarrival.mul_f64(jitter(&mut rng));
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let body = format!(
            "{{\"id\":\"{tenant}-{job}\",\"model\":\"{model}\",\"input\":\"cora\",\
             \"mode\":\"cycle\",\"tenant\":\"{tenant}\"}}"
        );
        job += 1;
        take.sent += 1;
        let mut attempt = 0usize;
        loop {
            if conn.is_none() {
                conn = TcpStream::connect(addr).ok().and_then(|s| {
                    let r = BufReader::new(s.try_clone().ok()?);
                    Some((s, r))
                });
            }
            let Some((stream, reader)) = conn.as_mut() else {
                take.io_errors += 1;
                break;
            };
            let sent_at = Instant::now();
            match roundtrip(stream, reader, "POST", "/v1/infer", &body) {
                Ok(resp) if resp.status == 200 => {
                    take.ok += 1;
                    take.latencies_us.push(sent_at.elapsed().as_micros() as u64);
                    break;
                }
                Ok(resp) if resp.status == 429 => {
                    take.backoffs_429 += 1;
                    if attempt >= SOAK_MAX_RETRIES || Instant::now() >= end {
                        take.dropped += 1;
                        break;
                    }
                    // Honour Retry-After (capped), escalate
                    // exponentially per attempt, jitter to avoid
                    // client synchronization.
                    let advertised_ms = resp
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(1)
                        .saturating_mul(1000)
                        .min(SOAK_BACKOFF_CAP_MS);
                    let wait_ms = (advertised_ms << attempt).min(SOAK_BACKOFF_CAP_MS * 2);
                    std::thread::sleep(
                        Duration::from_millis(wait_ms).mul_f64(jitter(&mut rng)),
                    );
                    attempt += 1;
                }
                Ok(_) => {
                    // 503 while draining or an unexpected status: count
                    // and move on — a soak must survive transients.
                    take.dropped += 1;
                    break;
                }
                Err(_) => {
                    take.io_errors += 1;
                    conn = None; // reconnect on the next attempt
                    if attempt >= SOAK_MAX_RETRIES {
                        take.dropped += 1;
                        break;
                    }
                    attempt += 1;
                }
            }
        }
    }
    take
}

fn soak_boot(opts: &SoakOptions) -> Result<crate::server::ServerHandle, String> {
    serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        instances: opts.instances.max(1),
        max_batch: opts.max_batch,
        flush: Duration::from_millis(1),
        queue_cap: opts.queue_cap,
        threads: 1,
        accel: opts.accel.clone(),
        scale: opts.scale,
        policy: TenantPolicy {
            default_spec: QuotaSpec::unlimited(),
            tenants: vec![(
                "flood".to_string(),
                QuotaSpec {
                    rate_per_s: opts.flood_quota,
                    burst: opts.flood_quota.max(1.0),
                    weight: 1,
                },
            )],
        },
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())
}

fn percentiles_json(latencies: &mut Vec<u64>) -> String {
    latencies.sort_unstable();
    format!(
        "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"p999_us\":{}",
        quantile(latencies, 0.50),
        quantile(latencies, 0.95),
        quantile(latencies, 0.99),
        quantile(latencies, 0.999)
    )
}

fn tenant_take_json(name: &str, take: &SoakTake, sorted: &[u64]) -> String {
    format!(
        "\"{name}\":{{\"sent\":{},\"ok\":{},\"backoffs_429\":{},\"dropped\":{},\
         \"io_errors\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
        take.sent,
        take.ok,
        take.backoffs_429,
        take.dropped,
        take.io_errors,
        quantile(sorted, 0.50),
        quantile(sorted, 0.99),
        quantile(sorted, 0.999)
    )
}

/// The sustained soak campaign: an isolated light-tenant phase to set
/// the fairness baseline, then a fresh daemon under light + flooding
/// tenants for `secs`, with an RSS monitor sampling `/stats`
/// throughout. Enforces the fairness bound (light p99 under flood ≤
/// `max_fairness` × isolated p99) and the flat-memory bound, and
/// returns the `BENCH_serve_soak.json` document.
///
/// # Errors
///
/// Boot failures, a fairness violation, RSS growth past the bound, or
/// a light tenant that got no successful responses.
pub fn run_soak(opts: &SoakOptions) -> Result<String, String> {
    let isolated_secs = (opts.secs / 4).clamp(3, 15);

    // Phase 1 — the light tenant alone: its isolated latency baseline.
    let server = soak_boot(opts)?;
    let addr = server.addr();
    let end = Instant::now() + Duration::from_secs(isolated_secs);
    let mut isolated = soak_worker(addr, "light", "gat", opts.light_rate, end, 11);
    shutdown_and_join(server);
    if isolated.ok == 0 {
        return Err("soak: isolated light phase produced no successful responses".into());
    }
    isolated.latencies_us.sort_unstable();
    let isolated_p99 = quantile(&isolated.latencies_us, 0.99);

    // Phase 2 — fresh daemon, light tenant + quota-limited flooder.
    let server = soak_boot(opts)?;
    let addr = server.addr();
    let end = Instant::now() + Duration::from_secs(opts.secs);
    let stop_monitor = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (light, flood, rss_samples) = std::thread::scope(|scope| {
        let light = scope.spawn(|| soak_worker(addr, "light", "gat", opts.light_rate, end, 23));
        // Two flood workers split the attempted rate so backoff sleeps
        // on one do not throttle the schedule.
        let flood_handles: Vec<_> = (0..2)
            .map(|w| {
                scope.spawn(move || {
                    soak_worker(addr, "flood", "gcn", opts.flood_rate / 2.0, end, 37 + w)
                })
            })
            .collect();
        let stop = std::sync::Arc::clone(&stop_monitor);
        let monitor = scope.spawn(move || {
            let mut samples: Vec<u64> = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(stats) = fetch_stats(addr) {
                    let rss = stats
                        .get("serve.mem_rss_bytes")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(0.0) as u64;
                    samples.push(rss);
                }
                std::thread::sleep(Duration::from_millis(500));
            }
            samples
        });
        let light = light.join().expect("light worker panicked");
        let mut flood = SoakTake::default();
        for h in flood_handles {
            flood.merge(h.join().expect("flood worker panicked"));
        }
        stop_monitor.store(true, std::sync::atomic::Ordering::Relaxed);
        let rss = monitor.join().expect("rss monitor panicked");
        (light, flood, rss)
    });
    let server_stats = fetch_stats(addr)?;
    shutdown_and_join(server);
    if light.ok == 0 {
        return Err("soak: light tenant got no successful responses under flood".into());
    }

    let mut light_sorted = light.latencies_us.clone();
    light_sorted.sort_unstable();
    let mut flood_sorted = flood.latencies_us.clone();
    flood_sorted.sort_unstable();
    let mixed_p99 = quantile(&light_sorted, 0.99);
    let fairness_ratio = mixed_p99 as f64 / isolated_p99.max(1) as f64;

    // RSS ceiling: the late-run maximum must not outgrow the early-run
    // maximum — a leak shows up as a rising ceiling, not a spike.
    let rss_ceiling = rss_samples.iter().copied().max().unwrap_or(0);
    let half = rss_samples.len() / 2;
    let early_max = rss_samples[..half].iter().copied().max().unwrap_or(0);
    let late_max = rss_samples[half..].iter().copied().max().unwrap_or(0);
    let rss_growth = if early_max == 0 {
        1.0 // non-linux (gauge reads 0) or too few samples: vacuously flat
    } else {
        late_max as f64 / early_max as f64
    };

    let mut all_latencies = light.latencies_us.clone();
    all_latencies.extend(flood.latencies_us.iter().copied());
    let doc = format!(
        "{{\n  \"workload\":{{\"secs\":{},\"isolated_secs\":{isolated_secs},\
         \"light_rate\":{},\"flood_rate\":{},\"flood_quota\":{},\"instances\":{},\
         \"queue_cap\":{}}},\n  \
         \"isolated\":{{\"ok\":{},{}}},\n  \"mixed\":{{{},\n    {},\n    {}}},\n  \
         \"fairness\":{{\"isolated_light_p99_us\":{isolated_p99},\
         \"mixed_light_p99_us\":{mixed_p99},\"ratio\":{},\"bound\":{}}},\n  \
         \"memory\":{{\"rss_samples\":{},\"rss_ceiling_bytes\":{rss_ceiling},\
         \"early_max_bytes\":{early_max},\"late_max_bytes\":{late_max},\
         \"growth\":{},\"bound\":{}}},\n  \
         \"server\":{{\"throttled_429\":{},\"rejected_429\":{},\"shed_deadline\":{},\
         \"cancelled\":{},\"degraded\":{},\"flood_admitted\":{},\"light_admitted\":{}}}\n}}",
        opts.secs,
        json::number(opts.light_rate),
        json::number(opts.flood_rate),
        json::number(opts.flood_quota),
        opts.instances,
        opts.queue_cap,
        isolated.ok,
        percentiles_json(&mut isolated.latencies_us.clone()),
        percentiles_json(&mut all_latencies),
        tenant_take_json("light", &light, &light_sorted),
        tenant_take_json("flood", &flood, &flood_sorted),
        json::number(fairness_ratio),
        json::number(opts.max_fairness),
        rss_samples.len(),
        json::number(rss_growth),
        json::number(opts.max_rss_growth),
        stat_u64(&server_stats, "serve.throttled_429"),
        stat_u64(&server_stats, "serve.rejected_429"),
        stat_u64(&server_stats, "serve.shed_deadline"),
        stat_u64(&server_stats, "serve.cancelled"),
        stat_u64(&server_stats, "serve.degraded"),
        stat_u64(&server_stats, "serve.tenant.flood.admitted"),
        stat_u64(&server_stats, "serve.tenant.light.admitted"),
    );

    if fairness_ratio > opts.max_fairness {
        return Err(format!(
            "soak fairness violated: light p99 {mixed_p99}µs under flood is \
             {fairness_ratio:.2}× its isolated {isolated_p99}µs (bound {:.2}×)\n{doc}",
            opts.max_fairness
        ));
    }
    if rss_growth > opts.max_rss_growth {
        return Err(format!(
            "soak memory ceiling grew {rss_growth:.3}× (early max {early_max} B, late max \
             {late_max} B, bound {:.2}×)\n{doc}",
            opts.max_rss_growth
        ));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_rows_extracts_exact_bytes() {
        let body = r#"{"id":"x","rows":[[1.25,-3e-7],[0.1]],"telemetry":{"a":[1]}}"#;
        assert_eq!(raw_rows(body), Some("[[1.25,-3e-7],[0.1]]"));
        assert_eq!(raw_rows("{}"), None);
    }

    #[test]
    fn quantiles_pick_sorted_ranks() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&lat, 0.50), 51); // rank 49.5 rounds up
        assert_eq!(quantile(&lat, 0.99), 99);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn job_schedule_is_deterministic() {
        let spec = LoadSpec {
            jobs: 8,
            concurrency: 4,
            model: ModelKind::Mpnn,
            input: "QM9_1000",
            dataset_instances: 20,
            mode: ExecMode::CycleAccurate,
        };
        assert_eq!(job_body(&spec, 3), job_body(&spec, 3));
        assert!(job_body(&spec, 3).contains("\"instance\":3"));
        assert!(job_body(&spec, 21).contains("\"instance\":1"));
    }

    #[test]
    fn soak_jitter_is_deterministic_and_bounded() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..1000 {
            let ja = jitter(&mut a);
            assert_eq!(ja, jitter(&mut b), "same seed, same schedule");
            assert!((0.5..1.5).contains(&ja), "jitter out of range: {ja}");
        }
        // Different seeds diverge (no accidental constant).
        let mut c = 43u64;
        assert_ne!(jitter(&mut a), jitter(&mut c));
    }
}
