//! Fixed-seed load harness: drives a running daemon with a
//! deterministic job schedule, measures sustained throughput and
//! latency quantiles client-side, and captures the raw `rows` bytes of
//! every response so callers can assert bit-identity (batched vs
//! unbatched vs the functional reference).
//!
//! [`run_baseline`] is the perf-trajectory entry point behind
//! `gnna-serve --load`: a batched phase and a batch-size-1 phase over
//! the same schedule, a functional bit-identity check, a backpressure
//! probe, and a `simulate_traced_opts` cycles/sec measurement — all
//! rendered into the `BENCH_serve_baseline.json` document.

use crate::http::{read_response, Response};
use crate::protocol::{push_rows, ExecMode};
use crate::server::{serve, ServeConfig};
use gnna_bench::{build_case, simulate_traced_opts, Scale, TraceOptions};
use gnna_core::config::AcceleratorConfig;
use gnna_models::ModelKind;
use gnna_telemetry::json::{self, JsonValue};
use gnna_telemetry::TraceLevel;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A deterministic load schedule.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Total jobs to submit.
    pub jobs: usize,
    /// Concurrent client connections (job `j` goes to client `j %
    /// concurrency` — fixed, so every run submits the same schedule).
    pub concurrency: usize,
    /// Model for every job.
    pub model: ModelKind,
    /// Dataset name for every job (canonical, e.g. `"QM9_1000"`).
    pub input: &'static str,
    /// Dataset instance count to cycle through (job `j` uses instance
    /// `j % dataset_instances`).
    pub dataset_instances: usize,
    /// Execution mode for every job.
    pub mode: ExecMode,
}

/// Client-side measurements of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs answered 200.
    pub ok: usize,
    /// 429 rejections observed (each is retried until accepted).
    pub rejected: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Sustained completed requests per second.
    pub req_per_s: f64,
    /// Client-observed latency quantiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

/// A load run's outcome: the measurements plus the raw `rows` bytes of
/// each response keyed by job id (for bit-identity assertions).
#[derive(Debug)]
pub struct LoadOutcome {
    /// Measurements.
    pub report: LoadReport,
    /// `job id → raw "rows" JSON substring` from each 200 response.
    pub rows_by_id: BTreeMap<String, String>,
}

/// Sends one request over an open connection and reads the response.
///
/// # Errors
///
/// I/O and framing errors.
pub fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: gnna-serve\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))
}

/// Extracts the raw `"rows":[...]` value bytes from a response body
/// without reparsing floats (reparsing would destroy bit-identity).
pub fn raw_rows(body: &str) -> Option<&str> {
    let start = body.find("\"rows\":")? + "\"rows\":".len();
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

fn job_body(spec: &LoadSpec, j: usize) -> String {
    format!(
        "{{\"id\":\"job{j}\",\"model\":\"{}\",\"input\":\"{}\",\"instance\":{},\"mode\":\"{}\"}}",
        spec.model.name().to_ascii_lowercase(),
        spec.input.to_ascii_lowercase(),
        j % spec.dataset_instances.max(1),
        spec.mode.as_str()
    )
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// One client thread's takings: (id, raw rows) pairs, per-job
/// latencies in µs, and the 429-retry count.
type ClientTake = (Vec<(String, String)>, Vec<u64>, usize);

/// Runs the load schedule against a daemon at `addr`. 429 responses are
/// retried after the advertised `Retry-After` (counted, not failed).
///
/// # Errors
///
/// The first client I/O error or non-(200|429) response.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> Result<LoadOutcome, String> {
    let concurrency = spec.concurrency.max(1);
    let started = Instant::now();
    let results: Vec<Result<ClientTake, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for c in 0..concurrency {
            let spec = &spec;
            handles.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                let mut rows = Vec::new();
                let mut latencies = Vec::new();
                let mut rejected = 0usize;
                let mut j = c;
                while j < spec.jobs {
                    let body = job_body(spec, j);
                    let sent = Instant::now();
                    let resp = roundtrip(&mut stream, &mut reader, "POST", "/v1/infer", &body)
                        .map_err(|e| e.to_string())?;
                    match resp.status {
                        200 => {
                            latencies.push(sent.elapsed().as_micros() as u64);
                            let r = raw_rows(&resp.body)
                                .ok_or_else(|| format!("no rows in: {}", resp.body))?;
                            rows.push((format!("job{j}"), r.to_string()));
                            j += concurrency;
                        }
                        429 => {
                            rejected += 1;
                            let wait = resp
                                .header("retry-after")
                                .and_then(|v| v.parse::<u64>().ok())
                                .unwrap_or(1)
                                .min(1);
                            std::thread::sleep(Duration::from_millis(wait * 20));
                        }
                        other => return Err(format!("job{j}: HTTP {other}: {}", resp.body)),
                    }
                }
                Ok((rows, latencies, rejected))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);

    let mut rows_by_id = BTreeMap::new();
    let mut latencies = Vec::with_capacity(spec.jobs);
    let mut rejected = 0usize;
    for r in results {
        let (rows, lat, rej) = r?;
        rows_by_id.extend(rows);
        latencies.extend(lat);
        rejected += rej;
    }
    latencies.sort_unstable();
    let ok = latencies.len();
    Ok(LoadOutcome {
        report: LoadReport {
            jobs: spec.jobs,
            ok,
            rejected,
            wall_s,
            req_per_s: ok as f64 / wall_s,
            p50_us: quantile(&latencies, 0.50),
            p95_us: quantile(&latencies, 0.95),
            p99_us: quantile(&latencies, 0.99),
        },
        rows_by_id,
    })
}

/// Fetches and parses `/stats` from a running daemon.
///
/// # Errors
///
/// I/O or JSON errors.
pub fn fetch_stats(addr: SocketAddr) -> Result<JsonValue, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let resp =
        roundtrip(&mut stream, &mut reader, "GET", "/stats", "").map_err(|e| e.to_string())?;
    json::parse(&resp.body)
}

/// Asks a daemon to shut down and waits for its threads to exit.
pub fn shutdown_and_join(handle: crate::server::ServerHandle) {
    handle.shutdown();
    handle.join();
}

/// Knobs for the perf-baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Jobs per phase (acceptance floor: 64).
    pub jobs: usize,
    /// Concurrent clients (acceptance floor: 64).
    pub concurrency: usize,
    /// Accelerator instances the daemon runs (acceptance floor: 4).
    pub instances: usize,
    /// Batched phase's max batch.
    pub max_batch: usize,
    /// Accelerator configuration.
    pub accel: AcceleratorConfig,
    /// Dataset scale.
    pub scale: Scale,
    /// Fail the run when batched/unbatched throughput falls below this.
    pub min_speedup: f64,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            jobs: 64,
            concurrency: 64,
            instances: 4,
            max_batch: 16,
            accel: AcceleratorConfig::gpu_iso_bandwidth(),
            scale: Scale::Smoke,
            min_speedup: 2.0,
        }
    }
}

fn boot(opts: &BaselineOptions, max_batch: usize) -> Result<crate::server::ServerHandle, String> {
    serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        instances: opts.instances,
        max_batch,
        flush: Duration::from_millis(1),
        queue_cap: 256,
        threads: 1,
        accel: opts.accel.clone(),
        scale: opts.scale,
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())
}

fn phase_json(name: &str, r: &LoadReport, batches: u64, max_batch_observed: u64) -> String {
    format!(
        "\"{name}\":{{\"jobs\":{},\"ok\":{},\"rejected_429\":{},\"wall_s\":{},\
         \"req_per_s\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
         \"batches\":{batches},\"max_batch_observed\":{max_batch_observed}}}",
        r.jobs,
        r.ok,
        r.rejected,
        json::number(r.wall_s),
        json::number(r.req_per_s),
        r.p50_us,
        r.p95_us,
        r.p99_us
    )
}

fn stat_u64(stats: &JsonValue, name: &str) -> u64 {
    stats.get(name).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// The full baseline campaign. The workload is the batching-friendliest
/// benchmark pair (MPNN over the QM9 molecule set: many small graphs,
/// per-run fixed cost dominates), cycle-accurate for the throughput
/// phases and functional for the bit-identity phase.
///
/// # Errors
///
/// Any phase failure, a bit-identity violation, or a speedup below
/// `min_speedup`.
pub fn run_baseline(opts: &BaselineOptions) -> Result<String, String> {
    let case = build_case(ModelKind::Mpnn, "QM9_1000", opts.scale).map_err(|e| e.to_string())?;
    let dataset_instances = case.dataset.instances.len();

    // Phase 1 — functional bit-identity: every served row must be the
    // exact reference bytes, batched or not.
    let functional = LoadSpec {
        jobs: opts.jobs,
        concurrency: opts.concurrency,
        model: ModelKind::Mpnn,
        input: "QM9_1000",
        dataset_instances,
        mode: ExecMode::Functional,
    };
    let batched_server = boot(opts, opts.max_batch)?;
    let f_batched = run_load(batched_server.addr(), &functional)?;
    shutdown_and_join(batched_server);
    for (id, rows) in &f_batched.rows_by_id {
        let j: usize = id
            .trim_start_matches("job")
            .parse()
            .map_err(|e| format!("{e}"))?;
        let inst = j % dataset_instances;
        let mut expect = String::new();
        // MPNN is a readout model: one reference row per molecule.
        push_rows(&mut expect, &[case.reference[inst].clone()]);
        if *rows != expect {
            return Err(format!(
                "functional response for {id} is not bit-identical to the reference"
            ));
        }
    }

    // Phase 2 — batched cycle-accurate throughput.
    let cycle = LoadSpec {
        mode: ExecMode::CycleAccurate,
        ..functional.clone()
    };
    let server = boot(opts, opts.max_batch)?;
    let c_batched = run_load(server.addr(), &cycle)?;
    let batched_stats = fetch_stats(server.addr())?;
    shutdown_and_join(server);

    // Phase 3 — batch-size-1 cycle-accurate throughput (the control).
    let server = boot(opts, 1)?;
    let c_serial = run_load(server.addr(), &cycle)?;
    let serial_stats = fetch_stats(server.addr())?;
    shutdown_and_join(server);

    let speedup = c_batched.report.req_per_s / c_serial.report.req_per_s.max(1e-9);
    if speedup < opts.min_speedup {
        return Err(format!(
            "batching speedup {speedup:.2}x is below the required {:.2}x \
             (batched {:.1} req/s vs serial {:.1} req/s)",
            opts.min_speedup, c_batched.report.req_per_s, c_serial.report.req_per_s
        ));
    }

    // Phase 4 — raw simulator cycles/sec on the reference config, so
    // the serving numbers sit next to a simulator-only baseline.
    let sim_case = build_case(ModelKind::Gcn, "Cora", opts.scale).map_err(|e| e.to_string())?;
    let sim_start = Instant::now();
    let traced = simulate_traced_opts(
        &sim_case,
        &opts.accel,
        &TraceOptions::at_level(TraceLevel::Off),
    )
    .map_err(|e| e.to_string())?;
    let sim_wall = sim_start.elapsed().as_secs_f64().max(1e-9);

    Ok(format!(
        "{{\n  \"workload\":{{\"model\":\"MPNN\",\"input\":\"QM9_1000\",\"scale\":\"smoke\",\
         \"jobs\":{},\"concurrency\":{},\"instances\":{},\"max_batch\":{}}},\n  {},\n  {},\n  \
         \"batching_speedup\":{},\n  \"functional_bit_identity\":\"verified\",\n  \
         \"simulator\":{{\"model\":\"GCN\",\"input\":\"Cora\",\"config\":\"{}\",\
         \"total_cycles\":{},\"wall_s\":{},\"cycles_per_s\":{}}}\n}}",
        opts.jobs,
        opts.concurrency,
        opts.instances,
        opts.max_batch,
        phase_json(
            "batched",
            &c_batched.report,
            stat_u64(&batched_stats, "serve.batches"),
            stat_u64(&batched_stats, "serve.max_batch_observed"),
        ),
        phase_json(
            "unbatched",
            &c_serial.report,
            stat_u64(&serial_stats, "serve.batches"),
            stat_u64(&serial_stats, "serve.max_batch_observed"),
        ),
        json::number(speedup),
        opts.accel.name,
        traced.report.total_cycles,
        json::number(sim_wall),
        json::number(traced.report.total_cycles as f64 / sim_wall),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_rows_extracts_exact_bytes() {
        let body = r#"{"id":"x","rows":[[1.25,-3e-7],[0.1]],"telemetry":{"a":[1]}}"#;
        assert_eq!(raw_rows(body), Some("[[1.25,-3e-7],[0.1]]"));
        assert_eq!(raw_rows("{}"), None);
    }

    #[test]
    fn quantiles_pick_sorted_ranks() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&lat, 0.50), 51); // rank 49.5 rounds up
        assert_eq!(quantile(&lat, 0.99), 99);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn job_schedule_is_deterministic() {
        let spec = LoadSpec {
            jobs: 8,
            concurrency: 4,
            model: ModelKind::Mpnn,
            input: "QM9_1000",
            dataset_instances: 20,
            mode: ExecMode::CycleAccurate,
        };
        assert_eq!(job_body(&spec, 3), job_body(&spec, 3));
        assert!(job_body(&spec, 3).contains("\"instance\":3"));
        assert!(job_body(&spec, 21).contains("\"instance\":1"));
    }
}
