//! Per-accelerator-instance batch queues with multi-tenant admission
//! control.
//!
//! Each simulated accelerator instance owns one [`BatchQueue`]. Inside
//! it, jobs are segregated into **per-tenant lanes** so that one
//! flooding client cannot starve everyone else:
//!
//! * **Token-bucket quotas** — each tenant may carry a rate limit
//!   (jobs/s plus a burst allowance). A job arriving with an empty
//!   bucket is *throttled* at admission (HTTP 429 with a `Retry-After`
//!   computed from the bucket refill time), before it costs any queue
//!   space or simulator time.
//! * **Weighted deficit round robin** — the worker dequeues across
//!   lanes in DRR order (each lane earns `weight` pops per round), so
//!   batch formation under pressure serves every backlogged tenant in
//!   proportion to its weight instead of strict FIFO over a shared
//!   queue.
//! * **Deadline-aware shedding** — a job may carry `deadline_ms`. When
//!   the queue-depth-derived wait estimate (depth × EWMA per-job
//!   service time) already exceeds the deadline, the job is shed at
//!   accept time; the same estimate feeds `Retry-After` on the full
//!   path, so the advertised backoff tracks actual pressure instead of
//!   a constant.
//! * **Graceful degradation** — with a non-zero *degrade watermark*,
//!   cycle-mode jobs admitted while the backlog is at or past the
//!   watermark are flipped to functional execution (flagged
//!   `"degraded":true` in the response) instead of queueing for a slow
//!   simulation or being rejected.
//! * **Cooperative cancel** — every job carries a shared cancel flag;
//!   a handler whose client disconnected sets it, and the dequeue path
//!   drops the job before it burns simulator time.
//!
//! The scheduler core ([`Scheduler`]) is a pure data structure driven
//! by explicit microsecond timestamps, so the fairness properties are
//! test-enforced with a deterministic virtual clock
//! (`crates/serve/tests/fairness.rs`) — no wall-clock sleeps, no
//! flakiness. [`BatchQueue`] is the thin blocking wrapper (mutex +
//! condvar + monotonic clock) the daemon threads use.

use crate::protocol::{ExecMode, JobInput, JobRequest};
use gnna_models::ModelKind;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lanes tracked per queue before new tenants fold into the default
/// lane (bounds memory against tenant-id cardinality attacks).
pub const MAX_TENANT_LANES: usize = 64;

/// The tenant every job without a `"tenant"` field belongs to.
pub const DEFAULT_TENANT: &str = "default";

/// Identifies jobs that may share one simulation batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchKey {
    /// Jobs over the same built-in dataset.
    Named(ModelKind, &'static str, ExecMode),
    /// Inline-graph jobs with the same feature/output widths (uniform
    /// widths are what lets one compiled program serve the whole batch).
    Inline(ModelKind, usize, usize, ExecMode),
}

impl BatchKey {
    /// The batch key of a request, at its requested execution mode.
    pub fn of(req: &JobRequest) -> BatchKey {
        Self::with_mode(req, req.mode)
    }

    /// The batch key of a job, honouring graceful degradation: a
    /// degraded cycle job batches (and executes) as a functional one.
    pub fn effective(job: &Job) -> BatchKey {
        let mode = if job.degraded {
            ExecMode::Functional
        } else {
            job.request.mode
        };
        Self::with_mode(&job.request, mode)
    }

    fn with_mode(req: &JobRequest, mode: ExecMode) -> BatchKey {
        match &req.input {
            JobInput::Named { input, .. } => BatchKey::Named(req.model, input, mode),
            JobInput::Inline(g) => BatchKey::Inline(
                req.model,
                g.features.first().map_or(0, Vec::len),
                g.out_features,
                mode,
            ),
        }
    }
}

/// The worker's verdict on one job, sent back to the waiting connection
/// handler: pre-rendered response body plus HTTP status.
#[derive(Debug)]
pub struct JobOutcome {
    /// HTTP status code (200, 400, 500).
    pub status: u16,
    /// Response body (JSON).
    pub body: String,
}

/// One admitted job: the parsed request, its response channel, and the
/// admission timestamp (for queue-latency telemetry).
#[derive(Debug)]
pub struct Job {
    /// Parsed request.
    pub request: JobRequest,
    /// Where the worker sends the outcome.
    pub respond: mpsc::Sender<JobOutcome>,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Request span id, assigned at admission (rendered in hex in the
    /// response `telemetry` and in the span trace).
    pub span_id: u64,
    /// When a worker adopted the job into a batch; `None` until
    /// [`BatchQueue::pop_batch`] stamps it. Queue wait is
    /// `batched - enqueued`; the rest of the pre-execution gap is the
    /// coalesce window.
    pub batched: Option<Instant>,
    /// Cooperative cancel flag: set by the connection handler when its
    /// client disconnects, honoured by the dequeue path.
    pub cancelled: Arc<AtomicBool>,
    /// Set at admission when the degrade watermark flipped this
    /// cycle-mode job to functional execution.
    pub degraded: bool,
}

impl Job {
    /// A job over `request` answering on `respond`, enqueued now.
    pub fn new(request: JobRequest, respond: mpsc::Sender<JobOutcome>, span_id: u64) -> Job {
        Job {
            request,
            respond,
            enqueued: Instant::now(),
            span_id,
            batched: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            degraded: false,
        }
    }
}

/// One tenant's quota and scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaSpec {
    /// Sustained admission rate in jobs/s (`0.0` = unlimited).
    pub rate_per_s: f64,
    /// Burst allowance in jobs (bucket capacity).
    pub burst: f64,
    /// Deficit-round-robin weight (pops earned per scheduling round).
    pub weight: u64,
}

impl QuotaSpec {
    /// An unlimited-rate spec with weight 1.
    pub fn unlimited() -> QuotaSpec {
        QuotaSpec {
            rate_per_s: 0.0,
            burst: 1.0,
            weight: 1,
        }
    }
}

impl Default for QuotaSpec {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Tenant admission policy: the default bucket plus per-tenant
/// overrides.
#[derive(Debug, Clone, Default)]
pub struct TenantPolicy {
    /// Spec applied to tenants without an explicit entry.
    pub default_spec: QuotaSpec,
    /// Per-tenant overrides, looked up by exact tenant id.
    pub tenants: Vec<(String, QuotaSpec)>,
}

impl TenantPolicy {
    fn spec_for(&self, tenant: &str) -> QuotaSpec {
        self.tenants
            .iter()
            .find(|(n, _)| n == tenant)
            .map_or(self.default_spec, |(_, s)| *s)
    }
}

/// Parses one `--tenant-quota` value: `[TENANT=]RATE[:BURST[:WEIGHT]]`.
/// Without `TENANT=` the spec becomes the default bucket. `RATE 0`
/// means unlimited.
///
/// # Errors
///
/// A human-readable description of the malformed field.
pub fn parse_quota_flag(s: &str) -> Result<(Option<String>, QuotaSpec), String> {
    let (tenant, spec) = match s.split_once('=') {
        Some((t, rest)) => {
            if t.is_empty() {
                return Err("empty tenant name in quota".into());
            }
            (Some(t.to_string()), rest)
        }
        None => (None, s),
    };
    let mut parts = spec.split(':');
    let rate: f64 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad quota rate in {s:?}"))?;
    if !rate.is_finite() || rate < 0.0 {
        return Err(format!("quota rate must be finite and >= 0 in {s:?}"));
    }
    let burst: f64 = match parts.next() {
        Some(b) => b.parse().map_err(|_| format!("bad quota burst in {s:?}"))?,
        None => rate.max(1.0),
    };
    if !burst.is_finite() || burst < 1.0 {
        return Err(format!("quota burst must be >= 1 in {s:?}"));
    }
    let weight: u64 = match parts.next() {
        Some(w) => w
            .parse()
            .map_err(|_| format!("bad quota weight in {s:?}"))?,
        None => 1,
    };
    if weight == 0 {
        return Err(format!("quota weight must be >= 1 in {s:?}"));
    }
    if parts.next().is_some() {
        return Err(format!("too many quota fields in {s:?}"));
    }
    Ok((
        tenant,
        QuotaSpec {
            rate_per_s: rate,
            burst,
            weight,
        },
    ))
}

/// Why admission refused a job; carries the job back to the handler so
/// its response channel can answer.
#[derive(Debug)]
pub enum PushError {
    /// Queue at capacity — answer 429 with the pressure-derived
    /// `Retry-After` (always ≥ 1 s).
    Full {
        /// The rejected job.
        job: Job,
        /// Advertised backoff, seconds (≥ 1).
        retry_after_s: u64,
    },
    /// Tenant over its token-bucket quota — answer 429 with the
    /// refill-derived `Retry-After` (always ≥ 1 s).
    Throttled {
        /// The throttled job.
        job: Job,
        /// Advertised backoff, seconds (≥ 1).
        retry_after_s: u64,
    },
    /// The job's `deadline_ms` cannot be met by the current backlog —
    /// shed at accept time instead of admitting doomed work.
    DeadlineUnmeetable {
        /// The shed job.
        job: Job,
        /// The wait estimate that exceeded the deadline, milliseconds.
        estimated_wait_ms: u64,
        /// Advertised backoff, seconds (≥ 1).
        retry_after_s: u64,
    },
    /// Queue closed — daemon is shutting down, answer 503.
    Closed(Job),
}

/// What a successful push tells the handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// The degrade watermark flipped this cycle job to functional
    /// execution (the response will carry `"degraded":true`).
    pub degraded: bool,
}

#[derive(Debug)]
struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    tokens: f64,
    last_us: u64,
}

impl TokenBucket {
    fn new(spec: QuotaSpec, now_us: u64) -> TokenBucket {
        TokenBucket {
            rate_per_us: spec.rate_per_s / 1e6,
            burst: spec.burst,
            tokens: spec.burst,
            last_us: now_us,
        }
    }

    /// Takes one token, or reports microseconds until one is available.
    fn take(&mut self, now_us: u64) -> Result<(), u64> {
        let dt = now_us.saturating_sub(self.last_us) as f64;
        self.tokens = (self.tokens + dt * self.rate_per_us).min(self.burst);
        self.last_us = now_us;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err((deficit / self.rate_per_us).ceil() as u64)
        }
    }
}

#[derive(Debug)]
struct Lane {
    name: String,
    jobs: VecDeque<Job>,
    deficit: u64,
    weight: u64,
    bucket: Option<TokenBucket>,
}

/// The pure multi-tenant scheduler: per-tenant lanes, token buckets,
/// weighted deficit round robin, and the queue-pressure wait estimator.
/// Every method takes an explicit `now_us`, so tests drive it with a
/// deterministic virtual clock.
#[derive(Debug)]
pub struct Scheduler {
    lanes: Vec<Lane>,
    by_name: HashMap<String, usize>,
    rr: usize,
    depth: usize,
    capacity: usize,
    closed: bool,
    policy: TenantPolicy,
    degrade_watermark: usize,
    /// EWMA of per-job service time, microseconds.
    service_est_us: u64,
    cancelled_drops: u64,
}

/// Initial per-job service estimate before any batch has been measured.
const INITIAL_SERVICE_EST_US: u64 = 1_000;

impl Scheduler {
    /// A scheduler admitting at most `capacity` jobs (`0` clamps to 1)
    /// under `policy`. `degrade_watermark` of 0 disables degradation.
    pub fn new(capacity: usize, policy: TenantPolicy, degrade_watermark: usize) -> Scheduler {
        let mut s = Scheduler {
            lanes: Vec::new(),
            by_name: HashMap::new(),
            rr: 0,
            depth: 0,
            capacity: capacity.max(1),
            closed: false,
            policy,
            degrade_watermark,
            service_est_us: INITIAL_SERVICE_EST_US,
            cancelled_drops: 0,
        };
        s.lane_index(DEFAULT_TENANT, 0);
        s
    }

    /// Jobs currently queued across all lanes.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Estimated wait for a newly admitted job, microseconds: backlog
    /// depth × the EWMA per-job service time. Conservative (ignores
    /// batching wins), which is the right bias for shedding decisions.
    pub fn wait_estimate_us(&self) -> u64 {
        self.depth as u64 * self.service_est_us
    }

    /// The current EWMA per-job service estimate, microseconds.
    pub fn service_estimate_us(&self) -> u64 {
        self.service_est_us
    }

    /// Folds one measured per-job service time into the EWMA (α = ¼).
    pub fn note_service(&mut self, per_job_us: u64) {
        self.service_est_us = (self.service_est_us * 3 + per_job_us.max(1)) / 4;
    }

    /// Cancelled jobs dropped at dequeue since the last call.
    pub fn take_cancelled(&mut self) -> u64 {
        std::mem::take(&mut self.cancelled_drops)
    }

    /// Closes the scheduler: further admissions fail, the backlog still
    /// drains.
    pub fn close(&mut self) {
        self.closed = true;
    }

    fn lane_index(&mut self, tenant: &str, now_us: u64) -> usize {
        if let Some(&i) = self.by_name.get(tenant) {
            return i;
        }
        if self.lanes.len() >= MAX_TENANT_LANES {
            // Bound lane cardinality: overflow tenants share the
            // default lane (they keep their own quota accounting only
            // if a lane frees up later).
            return self.by_name[DEFAULT_TENANT];
        }
        let spec = self.policy.spec_for(tenant);
        let bucket = (spec.rate_per_s > 0.0).then(|| TokenBucket::new(spec, now_us));
        self.lanes.push(Lane {
            name: tenant.to_string(),
            jobs: VecDeque::new(),
            deficit: 0,
            weight: spec.weight.max(1),
            bucket,
        });
        let i = self.lanes.len() - 1;
        self.by_name.insert(tenant.to_string(), i);
        i
    }

    /// Seconds-granularity `Retry-After` derived from a microsecond
    /// estimate — never 0, capped at 30 s so clients re-probe.
    fn retry_after_s(estimate_us: u64) -> u64 {
        estimate_us.div_ceil(1_000_000).clamp(1, 30)
    }

    /// Admission control: quota, deadline, capacity, degradation — in
    /// that order. On success the job is queued (possibly flagged
    /// degraded).
    ///
    /// # Errors
    ///
    /// [`PushError`] carries the job back so the caller can answer its
    /// response channel.
    // The large Err variant is the point: a rejected job returns to the
    // caller intact so the 429/503 response can answer on its channel.
    #[allow(clippy::result_large_err)]
    pub fn admit(&mut self, mut job: Job, now_us: u64) -> Result<Admitted, PushError> {
        if self.closed {
            return Err(PushError::Closed(job));
        }
        let lane = self.lane_index(&job.request.tenant, now_us);
        if let Some(bucket) = &mut self.lanes[lane].bucket {
            if let Err(wait_us) = bucket.take(now_us) {
                return Err(PushError::Throttled {
                    job,
                    retry_after_s: Self::retry_after_s(wait_us),
                });
            }
        }
        let est_us = self.wait_estimate_us();
        if let Some(deadline_ms) = job.request.deadline_ms {
            if est_us > deadline_ms.saturating_mul(1_000) {
                return Err(PushError::DeadlineUnmeetable {
                    job,
                    estimated_wait_ms: est_us.div_ceil(1_000),
                    retry_after_s: Self::retry_after_s(est_us),
                });
            }
        }
        if self.depth >= self.capacity {
            return Err(PushError::Full {
                job,
                retry_after_s: Self::retry_after_s(self.service_est_us.max(est_us / self.capacity.max(1) as u64)),
            });
        }
        let degraded = self.degrade_watermark > 0
            && job.request.mode == ExecMode::CycleAccurate
            && self.depth >= self.degrade_watermark;
        job.degraded = degraded;
        self.lanes[lane].jobs.push_back(job);
        self.depth += 1;
        Ok(Admitted { degraded })
    }

    /// Pops the next job in weighted-DRR order, dropping cancelled jobs
    /// on the way. `None` when every lane is empty.
    pub fn pop_next(&mut self) -> Option<Job> {
        loop {
            if self.depth == 0 {
                return None;
            }
            let n = self.lanes.len();
            let i = self.rr % n;
            let lane = &mut self.lanes[i];
            if lane.jobs.is_empty() {
                // An idle lane keeps no credit — deficits measure
                // backlogged rounds only.
                lane.deficit = 0;
                self.rr = (self.rr + 1) % n;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight;
            }
            lane.deficit -= 1;
            let job = lane.jobs.pop_front().expect("non-empty lane");
            if lane.deficit == 0 || lane.jobs.is_empty() {
                lane.deficit = 0;
                self.rr = (self.rr + 1) % n;
            }
            self.depth -= 1;
            if job.cancelled.load(Ordering::Relaxed) {
                self.cancelled_drops += 1;
                continue;
            }
            return Some(job);
        }
    }

    /// Pulls queued jobs whose effective [`BatchKey`] matches `key`
    /// into `batch` (up to `max_batch` total), scanning lanes in DRR
    /// order. Cancelled jobs are dropped; other jobs keep their order.
    pub fn coalesce_into(&mut self, key: BatchKey, batch: &mut Vec<Job>, max_batch: usize) {
        let n = self.lanes.len();
        for off in 0..n {
            if batch.len() >= max_batch {
                return;
            }
            let lane = &mut self.lanes[(self.rr + off) % n];
            let mut rest = VecDeque::with_capacity(lane.jobs.len());
            while let Some(job) = lane.jobs.pop_front() {
                if job.cancelled.load(Ordering::Relaxed) {
                    self.cancelled_drops += 1;
                    self.depth -= 1;
                } else if batch.len() < max_batch && BatchKey::effective(&job) == key {
                    self.depth -= 1;
                    batch.push(job);
                } else {
                    rest.push_back(job);
                }
            }
            lane.jobs = rest;
        }
    }

    /// One non-blocking batch: DRR head pick plus a same-key coalesce
    /// sweep. `None` when nothing is queued. This is the virtual-clock
    /// harness entry point; the daemon's [`BatchQueue::pop_batch`] adds
    /// the blocking flush window around the same two calls.
    pub fn next_batch(&mut self, max_batch: usize) -> Option<Vec<Job>> {
        let mut first = self.pop_next()?;
        first.batched = Some(Instant::now());
        let key = BatchKey::effective(&first);
        let mut batch = vec![first];
        self.coalesce_into(key, &mut batch, max_batch.max(1));
        Some(batch)
    }

    /// Per-lane queue depths, `(tenant, depth)`, lanes in creation
    /// order.
    pub fn depths_by_tenant(&self) -> Vec<(String, usize)> {
        self.lanes
            .iter()
            .map(|l| (l.name.clone(), l.jobs.len()))
            .collect()
    }
}

/// A bounded MPSC batch queue (many connection handlers, one instance
/// worker) over the multi-tenant [`Scheduler`].
#[derive(Debug)]
pub struct BatchQueue {
    state: Mutex<Scheduler>,
    nonempty: Condvar,
    started: Instant,
}

impl BatchQueue {
    /// A queue admitting at most `capacity` jobs (`0` is clamped to 1)
    /// with no quotas and degradation off.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, TenantPolicy::default(), 0)
    }

    /// A queue with a tenant policy and a degrade watermark (0 = off).
    pub fn with_policy(capacity: usize, policy: TenantPolicy, degrade_watermark: usize) -> Self {
        BatchQueue {
            state: Mutex::new(Scheduler::new(capacity, policy, degrade_watermark)),
            nonempty: Condvar::new(),
            started: Instant::now(),
        }
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Current depth (for `/stats`).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").depth()
    }

    /// Per-tenant depths (for `/stats`).
    pub fn depths_by_tenant(&self) -> Vec<(String, usize)> {
        self.state
            .lock()
            .expect("queue poisoned")
            .depths_by_tenant()
    }

    /// Folds a measured per-job service time into the wait estimator.
    pub fn note_service(&self, per_job_us: u64) {
        self.state
            .lock()
            .expect("queue poisoned")
            .note_service(per_job_us);
    }

    /// Cancelled jobs dropped at dequeue since the last call.
    pub fn take_cancelled(&self) -> u64 {
        self.state.lock().expect("queue poisoned").take_cancelled()
    }

    /// Admits a job through quota → deadline → capacity control.
    ///
    /// # Errors
    ///
    /// [`PushError`] variants carry the job back so the 429/503
    /// response can answer on its channel.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<Admitted, PushError> {
        let now_us = self.now_us();
        let mut st = self.state.lock().expect("queue poisoned");
        let admitted = st.admit(job, now_us)?;
        drop(st);
        self.nonempty.notify_one();
        Ok(admitted)
    }

    /// Closes the queue: further pushes fail, and once the backlog
    /// drains [`pop_batch`](Self::pop_batch) returns `None` so the
    /// worker exits. Jobs already queued are still served — this is the
    /// graceful-shutdown drain.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").close();
        self.nonempty.notify_all();
    }

    /// Pops the next batch: blocks for the first job (chosen in
    /// weighted-DRR order across tenant lanes), then coalesces queued
    /// jobs with the same effective [`BatchKey`] until `max_batch` is
    /// reached or the flush window expires. Jobs with other keys keep
    /// their order. Returns `None` when the queue is closed and empty.
    pub fn pop_batch(&self, max_batch: usize, flush: Duration) -> Option<Vec<Job>> {
        let max_batch = max_batch.max(1);
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(mut first) = st.pop_next() {
                let popped = Instant::now();
                first.batched = Some(popped);
                let key = BatchKey::effective(&first);
                let mut batch = vec![first];
                let deadline = popped + flush;
                loop {
                    let before = batch.len();
                    st.coalesce_into(key, &mut batch, max_batch);
                    for job in batch.iter_mut().skip(before) {
                        job.batched = Some(Instant::now());
                    }
                    if batch.len() >= max_batch || st.is_closed() {
                        break;
                    }
                    // Bounded-latency flush: wait for stragglers only
                    // up to the deadline.
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timeout) = self
                        .nonempty
                        .wait_timeout(st, deadline - now)
                        .expect("queue poisoned");
                    st = next;
                    if timeout.timed_out() && st.depth() == 0 {
                        break;
                    }
                }
                return Some(batch);
            }
            if st.is_closed() {
                return None;
            }
            st = self.nonempty.wait(st).expect("queue poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_job;

    fn job(body: &str) -> (Job, mpsc::Receiver<JobOutcome>) {
        let (tx, rx) = mpsc::channel();
        (Job::new(parse_job(body).unwrap(), tx, 0), rx)
    }

    #[test]
    fn coalesces_compatible_jobs_and_keeps_others_queued() {
        let q = BatchQueue::new(16);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        let (b, _rb) = job(r#"{"model":"gat","input":"cora"}"#);
        let (c, _rc) = job(r#"{"model":"gcn","input":"cora","instance":0}"#);
        q.push(a).unwrap();
        q.push(b).unwrap();
        q.push(c).unwrap();
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2, "gcn jobs should coalesce around gat");
        assert!(batch.iter().all(|j| j.request.model == ModelKind::Gcn));
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request.model, ModelKind::Gat);
    }

    #[test]
    fn mode_splits_batches() {
        let q = BatchQueue::new(16);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora","mode":"functional"}"#);
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora","mode":"cycle"}"#);
        q.push(a).unwrap();
        q.push(b).unwrap();
        assert_eq!(q.pop_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
        assert_eq!(q.pop_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
    }

    #[test]
    fn full_queue_rejects_with_the_job_back_and_nonzero_retry_after() {
        let q = BatchQueue::new(1);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora"}"#);
        q.push(a).unwrap();
        match q.push(b) {
            Err(PushError::Full {
                job: j,
                retry_after_s,
            }) => {
                assert_eq!(j.request.model, ModelKind::Gcn);
                // Satellite regression: Retry-After is never 0 seconds.
                assert!(retry_after_s >= 1, "Retry-After must be >= 1, got {retry_after_s}");
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn capacity_boundary_admits_exactly_cap_then_rejects() {
        // The boundary between coalesce-into-existing-batch and reject:
        // a queue at exactly `cap` holds every admitted job (they can
        // still coalesce when popped); job cap+1 is rejected with a
        // non-zero Retry-After.
        let cap = 4;
        let q = BatchQueue::new(cap);
        let mut rxs = Vec::new();
        for _ in 0..cap {
            let (j, r) = job(r#"{"model":"gcn","input":"cora"}"#);
            q.push(j).unwrap();
            rxs.push(r);
        }
        assert_eq!(q.depth(), cap);
        let (extra, _re) = job(r#"{"model":"gcn","input":"cora"}"#);
        match q.push(extra) {
            Err(PushError::Full { retry_after_s, .. }) => assert!(retry_after_s >= 1),
            other => panic!("expected Full at the boundary, got {other:?}"),
        }
        // The whole backlog still coalesces into one batch.
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), cap);
    }

    #[test]
    fn concurrent_producers_at_the_capacity_boundary_lose_nothing() {
        // N producers race a cap-C queue: exactly C jobs are admitted,
        // N−C rejected, and every admitted job is eventually popped.
        let cap = 3;
        let producers = 12;
        let q = std::sync::Arc::new(BatchQueue::new(cap));
        let (admitted, rejected): (usize, usize) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..producers)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    scope.spawn(move || {
                        let (j, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
                        match q.push(j) {
                            Ok(_) => (1, 0),
                            Err(PushError::Full { .. }) => (0, 1),
                            other => panic!("unexpected admission result {other:?}"),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0, 0), |(a, r), (da, dr)| (a + da, r + dr))
        });
        assert_eq!(admitted, cap, "exactly cap jobs admitted");
        assert_eq!(rejected, producers - cap);
        let mut popped = 0;
        q.close();
        while let Some(batch) = q.pop_batch(8, Duration::ZERO) {
            popped += batch.len();
        }
        assert_eq!(popped, admitted, "admitted jobs lost in the queue");
    }

    #[test]
    fn drain_while_shedding_loses_no_admitted_jobs() {
        // Producers keep hammering a tiny queue while it is closed
        // mid-stream: every job either failed admission (client got an
        // error) or is served by the drain — no admitted job vanishes.
        let q = std::sync::Arc::new(BatchQueue::new(2));
        let total = 64;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(5));
        let (admitted, popped) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for p in 0..4 {
                let q = std::sync::Arc::clone(&q);
                let barrier = std::sync::Arc::clone(&barrier);
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    let mut ok = 0;
                    for i in 0..total / 4 {
                        let (j, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
                        if q.push(j).is_ok() {
                            ok += 1;
                        }
                        if p == 0 && i == total / 8 {
                            q.close(); // shutdown lands mid-shedding
                        }
                    }
                    ok
                }));
            }
            // The consumer drains concurrently, like an instance worker.
            let qc = std::sync::Arc::clone(&q);
            let consumer = scope.spawn(move || {
                barrier.wait();
                let mut popped = 0;
                while let Some(batch) = qc.pop_batch(4, Duration::from_micros(100)) {
                    popped += batch.len();
                }
                popped
            });
            let admitted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            (admitted, consumer.join().unwrap())
        });
        assert_eq!(
            popped, admitted,
            "drain lost admitted jobs ({popped} served of {admitted} admitted)"
        );
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new(4);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        q.push(a).unwrap();
        q.close();
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora"}"#);
        assert!(matches!(q.push(b), Err(PushError::Closed(_))));
        // The queued job is still served before the worker is told to exit.
        assert_eq!(q.pop_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let q = BatchQueue::new(16);
        for _ in 0..3 {
            let (a, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
            q.push(a).unwrap();
        }
        for _ in 0..3 {
            assert_eq!(q.pop_batch(1, Duration::ZERO).unwrap().len(), 1);
        }
    }

    #[test]
    fn pop_batch_stamps_the_batched_instant() {
        let q = BatchQueue::new(4);
        let (a, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
        assert!(a.batched.is_none());
        q.push(a).unwrap();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        let j = &batch[0];
        assert!(j.batched.expect("pop_batch stamps batched") >= j.enqueued);
    }

    #[test]
    fn token_bucket_throttles_past_the_burst() {
        let policy = TenantPolicy {
            default_spec: QuotaSpec::unlimited(),
            tenants: vec![(
                "t1".into(),
                QuotaSpec {
                    rate_per_s: 1.0,
                    burst: 2.0,
                    weight: 1,
                },
            )],
        };
        let mut s = Scheduler::new(64, policy, 0);
        let mk = || job(r#"{"model":"gcn","input":"cora","tenant":"t1"}"#).0;
        assert!(s.admit(mk(), 0).is_ok());
        assert!(s.admit(mk(), 0).is_ok());
        match s.admit(mk(), 0) {
            Err(PushError::Throttled { retry_after_s, .. }) => assert!(retry_after_s >= 1),
            other => panic!("expected Throttled, got {other:?}"),
        }
        // A second elapses (virtual clock): one token refills.
        assert!(s.admit(mk(), 1_000_000).is_ok());
        // Other tenants are untouched by t1's bucket.
        let other = job(r#"{"model":"gcn","input":"cora","tenant":"t2"}"#).0;
        assert!(s.admit(other, 0).is_ok());
    }

    #[test]
    fn deadline_shedding_uses_the_wait_estimate() {
        let mut s = Scheduler::new(64, TenantPolicy::default(), 0);
        s.note_service(10_000); // converge the EWMA upward
        s.note_service(10_000);
        s.note_service(10_000);
        for _ in 0..10 {
            let (j, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
            s.admit(j, 0).unwrap();
        }
        let est = s.wait_estimate_us();
        assert!(est > 20_000, "estimate too low: {est}");
        // A deadline below the estimate is shed at accept time.
        let (tight, _r) = job(r#"{"model":"gcn","input":"cora","deadline_ms":5}"#);
        match s.admit(tight, 0) {
            Err(PushError::DeadlineUnmeetable {
                estimated_wait_ms,
                retry_after_s,
                ..
            }) => {
                assert!(estimated_wait_ms >= 5);
                assert!(retry_after_s >= 1);
            }
            other => panic!("expected DeadlineUnmeetable, got {other:?}"),
        }
        // A generous deadline is admitted.
        let (loose, _r) = job(r#"{"model":"gcn","input":"cora","deadline_ms":60000}"#);
        assert!(s.admit(loose, 0).is_ok());
    }

    #[test]
    fn degrade_watermark_flips_cycle_jobs_to_functional() {
        let mut s = Scheduler::new(64, TenantPolicy::default(), 2);
        let mk = |mode: &str| {
            job(&format!(
                r#"{{"model":"gcn","input":"cora","mode":"{mode}"}}"#
            ))
            .0
        };
        assert_eq!(s.admit(mk("cycle"), 0).unwrap().degraded, false);
        assert_eq!(s.admit(mk("cycle"), 0).unwrap().degraded, false);
        // Depth 2 = watermark: cycle jobs degrade, functional untouched.
        assert!(s.admit(mk("cycle"), 0).unwrap().degraded);
        assert!(!s.admit(mk("functional"), 0).unwrap().degraded);
        // Degraded jobs batch with functional ones (same effective key).
        let batch = s.next_batch(8).unwrap();
        assert_eq!(batch.len(), 2, "cycle head batch");
        let batch = s.next_batch(8).unwrap();
        assert_eq!(batch.len(), 2, "degraded + functional share a batch");
        assert!(batch.iter().any(|j| j.degraded));
    }

    #[test]
    fn cancelled_jobs_are_dropped_at_dequeue() {
        let q = BatchQueue::new(8);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora"}"#);
        let cancel = Arc::clone(&a.cancelled);
        q.push(a).unwrap();
        q.push(b).unwrap();
        cancel.store(true, Ordering::Relaxed);
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1, "cancelled job must not be served");
        assert_eq!(q.take_cancelled(), 1);
    }

    #[test]
    fn drr_interleaves_a_floods_backlog_with_a_light_tenant() {
        let mut s = Scheduler::new(1024, TenantPolicy::default(), 0);
        for _ in 0..100 {
            let (j, _r) = job(r#"{"model":"gcn","input":"cora","tenant":"flood","mode":"cycle"}"#);
            s.admit(j, 0).unwrap();
        }
        let (light, _r) =
            job(r#"{"model":"gat","input":"cora","tenant":"light","mode":"cycle"}"#);
        s.admit(light, 0).unwrap();
        // Without coalescing (max_batch 1), the light tenant's job is
        // served within the first DRR round, not behind 100 flood jobs.
        let mut served_light_at = None;
        for i in 0..101 {
            let batch = s.next_batch(1).unwrap();
            if batch[0].request.tenant == "light" {
                served_light_at = Some(i);
                break;
            }
        }
        let pos = served_light_at.expect("light job served");
        assert!(pos <= 2, "light tenant starved until position {pos}");
    }

    #[test]
    fn quota_flag_parses_all_forms() {
        assert_eq!(
            parse_quota_flag("10").unwrap(),
            (
                None,
                QuotaSpec {
                    rate_per_s: 10.0,
                    burst: 10.0,
                    weight: 1
                }
            )
        );
        assert_eq!(
            parse_quota_flag("flood=5:20:3").unwrap(),
            (
                Some("flood".into()),
                QuotaSpec {
                    rate_per_s: 5.0,
                    burst: 20.0,
                    weight: 3
                }
            )
        );
        assert!(parse_quota_flag("=5").is_err());
        assert!(parse_quota_flag("a=-1").is_err());
        assert!(parse_quota_flag("a=1:0").is_err());
        assert!(parse_quota_flag("a=1:2:0").is_err());
        assert!(parse_quota_flag("a=1:2:3:4").is_err());
    }

    #[test]
    fn tenant_lane_cardinality_is_bounded() {
        let mut s = Scheduler::new(100_000, TenantPolicy::default(), 0);
        for i in 0..(MAX_TENANT_LANES * 2) {
            let (j, _r) = job(&format!(
                r#"{{"model":"gcn","input":"cora","tenant":"t{i}"}}"#
            ));
            s.admit(j, 0).unwrap();
        }
        assert!(s.depths_by_tenant().len() <= MAX_TENANT_LANES);
        // Every admitted job still drains.
        let mut popped = 0;
        while let Some(b) = s.next_batch(64) {
            popped += b.len();
        }
        assert_eq!(popped, MAX_TENANT_LANES * 2);
    }
}
