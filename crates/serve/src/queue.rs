//! Per-accelerator-instance batch queues.
//!
//! Each simulated accelerator instance owns one bounded queue. A
//! connection handler pushes a job and blocks on its private response
//! channel; the instance's worker thread pops *batches*: it takes the
//! oldest job, then opportunistically coalesces every queued job with a
//! compatible batch key, waiting up to the flush window for stragglers.
//! Compatible means the jobs can share one `System` — same model, same
//! source dataset (or same inline feature/output widths), same mode —
//! so a batch becomes a single union-graph simulation whose fixed
//! per-run cost (config phase, layout, program issue) is paid once.
//!
//! The bound is the backpressure mechanism: a full queue rejects the
//! push and the handler answers HTTP 429 with `Retry-After`, instead of
//! queueing unboundedly and timing everyone out.

use crate::protocol::{ExecMode, JobInput, JobRequest};
use gnna_models::ModelKind;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identifies jobs that may share one simulation batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchKey {
    /// Jobs over the same built-in dataset.
    Named(ModelKind, &'static str, ExecMode),
    /// Inline-graph jobs with the same feature/output widths (uniform
    /// widths are what lets one compiled program serve the whole batch).
    Inline(ModelKind, usize, usize, ExecMode),
}

impl BatchKey {
    /// The batch key of a job.
    pub fn of(req: &JobRequest) -> BatchKey {
        match &req.input {
            JobInput::Named { input, .. } => BatchKey::Named(req.model, input, req.mode),
            JobInput::Inline(g) => BatchKey::Inline(
                req.model,
                g.features.first().map_or(0, Vec::len),
                g.out_features,
                req.mode,
            ),
        }
    }
}

/// The worker's verdict on one job, sent back to the waiting connection
/// handler: pre-rendered response body plus HTTP status.
#[derive(Debug)]
pub struct JobOutcome {
    /// HTTP status code (200, 400, 500).
    pub status: u16,
    /// Response body (JSON).
    pub body: String,
}

/// One admitted job: the parsed request, its response channel, and the
/// admission timestamp (for queue-latency telemetry).
#[derive(Debug)]
pub struct Job {
    /// Parsed request.
    pub request: JobRequest,
    /// Where the worker sends the outcome.
    pub respond: mpsc::Sender<JobOutcome>,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Request span id, assigned at admission (rendered in hex in the
    /// response `telemetry` and in the span trace).
    pub span_id: u64,
    /// When a worker adopted the job into a batch; `None` until
    /// [`BatchQueue::pop_batch`] stamps it. Queue wait is
    /// `batched - enqueued`; the rest of the pre-execution gap is the
    /// coalesce window.
    pub batched: Option<Instant>,
}

#[derive(Debug, Default)]
struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A bounded MPSC batch queue (many connection handlers, one instance
/// worker).
#[derive(Debug)]
pub struct BatchQueue {
    state: Mutex<State>,
    nonempty: Condvar,
    capacity: usize,
}

impl BatchQueue {
    /// A queue admitting at most `capacity` jobs (`0` is clamped to 1).
    pub fn new(capacity: usize) -> Self {
        BatchQueue {
            state: Mutex::new(State::default()),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current depth (for `/stats`).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Admits a job. Returns it unchanged when the queue is full
    /// (backpressure → 429) or closed (shutdown → 503).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] and [`PushError::Closed`] carry the job back.
    // The large Err variant is the point: a rejected job returns to the
    // caller intact so the 429/503 response can answer on its channel.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<(), PushError> {
        let mut st = self.state.lock().expect("queue poisoned");
        if st.closed {
            return Err(PushError::Closed(job));
        }
        if st.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        st.jobs.push_back(job);
        drop(st);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Closes the queue: further pushes fail, and once the backlog
    /// drains [`pop_batch`](Self::pop_batch) returns `None` so the
    /// worker exits. Jobs already queued are still served — this is the
    /// graceful-shutdown drain.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }

    /// Pops the next batch: blocks for the first job, then coalesces
    /// queued jobs with the same [`BatchKey`] until `max_batch` is
    /// reached or the flush window expires. Jobs with other keys keep
    /// their queue order. Returns `None` when the queue is closed and
    /// empty.
    pub fn pop_batch(&self, max_batch: usize, flush: Duration) -> Option<Vec<Job>> {
        let max_batch = max_batch.max(1);
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(mut first) = st.jobs.pop_front() {
                let key = BatchKey::of(&first.request);
                let popped = Instant::now();
                first.batched = Some(popped);
                let mut batch = vec![first];
                let deadline = popped + flush;
                loop {
                    // Pull every compatible job currently queued.
                    let mut rest = VecDeque::with_capacity(st.jobs.len());
                    while let Some(mut job) = st.jobs.pop_front() {
                        if batch.len() < max_batch && BatchKey::of(&job.request) == key {
                            job.batched = Some(Instant::now());
                            batch.push(job);
                        } else {
                            rest.push_back(job);
                        }
                    }
                    st.jobs = rest;
                    if batch.len() >= max_batch || st.closed {
                        break;
                    }
                    // Bounded-latency flush: wait for stragglers only
                    // up to the deadline.
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timeout) = self
                        .nonempty
                        .wait_timeout(st, deadline - now)
                        .expect("queue poisoned");
                    st = next;
                    if timeout.timed_out() && st.jobs.is_empty() {
                        break;
                    }
                }
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.nonempty.wait(st).expect("queue poisoned");
        }
    }
}

/// Why a push was refused; carries the job back to the handler.
#[derive(Debug)]
pub enum PushError {
    /// Queue at capacity — answer 429 + `Retry-After`.
    Full(Job),
    /// Queue closed — daemon is shutting down, answer 503.
    Closed(Job),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_job;

    fn job(body: &str) -> (Job, mpsc::Receiver<JobOutcome>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                request: parse_job(body).unwrap(),
                respond: tx,
                enqueued: Instant::now(),
                span_id: 0,
                batched: None,
            },
            rx,
        )
    }

    #[test]
    fn coalesces_compatible_jobs_and_keeps_others_queued() {
        let q = BatchQueue::new(16);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        let (b, _rb) = job(r#"{"model":"gat","input":"cora"}"#);
        let (c, _rc) = job(r#"{"model":"gcn","input":"cora","instance":0}"#);
        q.push(a).unwrap();
        q.push(b).unwrap();
        q.push(c).unwrap();
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2, "gcn jobs should coalesce around gat");
        assert!(batch.iter().all(|j| j.request.model == ModelKind::Gcn));
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request.model, ModelKind::Gat);
    }

    #[test]
    fn mode_splits_batches() {
        let q = BatchQueue::new(16);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora","mode":"functional"}"#);
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora","mode":"cycle"}"#);
        q.push(a).unwrap();
        q.push(b).unwrap();
        assert_eq!(q.pop_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
        assert_eq!(q.pop_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
    }

    #[test]
    fn full_queue_rejects_with_the_job_back() {
        let q = BatchQueue::new(1);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora"}"#);
        q.push(a).unwrap();
        match q.push(b) {
            Err(PushError::Full(j)) => assert_eq!(j.request.model, ModelKind::Gcn),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BatchQueue::new(4);
        let (a, _ra) = job(r#"{"model":"gcn","input":"cora"}"#);
        q.push(a).unwrap();
        q.close();
        let (b, _rb) = job(r#"{"model":"gcn","input":"cora"}"#);
        assert!(matches!(q.push(b), Err(PushError::Closed(_))));
        // The queued job is still served before the worker is told to exit.
        assert_eq!(q.pop_batch(8, Duration::from_millis(1)).unwrap().len(), 1);
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let q = BatchQueue::new(16);
        for _ in 0..3 {
            let (a, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
            q.push(a).unwrap();
        }
        for _ in 0..3 {
            assert_eq!(q.pop_batch(1, Duration::ZERO).unwrap().len(), 1);
        }
    }

    #[test]
    fn pop_batch_stamps_the_batched_instant() {
        let q = BatchQueue::new(4);
        let (a, _r) = job(r#"{"model":"gcn","input":"cora"}"#);
        assert!(a.batched.is_none());
        q.push(a).unwrap();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        let j = &batch[0];
        assert!(j.batched.expect("pop_batch stamps batched") >= j.enqueued);
    }
}
