//! The job wire protocol: JSON request parsing and response
//! serialization.
//!
//! A job names either a built-in benchmark graph (`"input"` +
//! `"instance"`) or carries an inline graph (`"graph"`), picks a model
//! family and an execution mode, and comes back as output rows plus
//! per-job telemetry. Floats are serialized with Rust's shortest
//! round-trip formatting, so functional-mode responses are bit-exact
//! reproductions of the `gnna-models` reference — the property the
//! load harness and CI verify.

use gnna_models::ModelKind;
use gnna_telemetry::json::{self, JsonValue};

/// Execution mode of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// `gnna-models` forward pass only: exact reference rows, no cycles.
    Functional,
    /// Full cycle-accurate simulation: rows from the simulated
    /// accelerator plus cycles/energy/stall telemetry and an accuracy
    /// grade against the functional reference.
    CycleAccurate,
}

impl ExecMode {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Functional => "functional",
            ExecMode::CycleAccurate => "cycle",
        }
    }

    /// Parses a wire/CLI mode name.
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "functional" => Some(ExecMode::Functional),
            "cycle" | "cycle-accurate" => Some(ExecMode::CycleAccurate),
            _ => None,
        }
    }
}

/// An inline graph shipped with the job instead of a dataset name.
/// Undirected edges; vertex features as dense rows.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineGraph {
    /// Vertex count.
    pub num_vertices: usize,
    /// Undirected edge list.
    pub edges: Vec<(usize, usize)>,
    /// Dense feature rows, `num_vertices × F` (F uniform).
    pub features: Vec<Vec<f32>>,
    /// Output feature width the model head should produce.
    pub out_features: usize,
}

/// What the job runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum JobInput {
    /// A built-in benchmark dataset (Table V name) and the instance
    /// index inside it (always 0 for single-graph datasets; a molecule
    /// index for QM9).
    Named {
        /// Canonical dataset name (`"Cora"`, `"QM9_1000"`, ...).
        input: &'static str,
        /// Instance index within the dataset.
        instance: usize,
    },
    /// An inline graph from the request body.
    Inline(InlineGraph),
}

/// One parsed inference job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen job id, echoed back in the response.
    pub id: String,
    /// Model family.
    pub model: ModelKind,
    /// Graph input.
    pub input: JobInput,
    /// Execution mode.
    pub mode: ExecMode,
    /// Tenant the job is billed to (admission quota + scheduling lane);
    /// `"default"` when the request carries no `"tenant"` field.
    pub tenant: String,
    /// Optional client deadline in milliseconds: the job is shed at
    /// admission when the queue's wait estimate already exceeds it.
    pub deadline_ms: Option<u64>,
}

fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "gcn" => Ok(ModelKind::Gcn),
        "gat" => Ok(ModelKind::Gat),
        "mpnn" => Ok(ModelKind::Mpnn),
        "pgnn" => Ok(ModelKind::Pgnn),
        other => Err(format!("unknown model {other:?} (gcn|gat|mpnn|pgnn)")),
    }
}

/// Canonicalizes a dataset name from the wire (same aliases as the
/// `gnna-campaign` CLI).
pub fn parse_input_name(s: &str) -> Result<&'static str, String> {
    match s.to_ascii_lowercase().as_str() {
        "cora" => Ok("Cora"),
        "citeseer" => Ok("Citeseer"),
        "pubmed" => Ok("Pubmed"),
        "qm9_1000" | "qm9" => Ok("QM9_1000"),
        "dblp_1" | "dblp" => Ok("DBLP_1"),
        other => Err(format!(
            "unknown input {other:?} (cora|citeseer|pubmed|qm9|dblp)"
        )),
    }
}

fn parse_inline_graph(v: &JsonValue) -> Result<InlineGraph, String> {
    let num_vertices = v
        .get("num_vertices")
        .and_then(JsonValue::as_u64)
        .ok_or("graph.num_vertices must be a number")? as usize;
    if num_vertices == 0 {
        return Err("graph.num_vertices must be positive".into());
    }
    let mut edges = Vec::new();
    for (i, e) in v
        .get("edges")
        .and_then(JsonValue::as_array)
        .ok_or("graph.edges must be an array of [u, v] pairs")?
        .iter()
        .enumerate()
    {
        let pair = e
            .as_array()
            .ok_or_else(|| format!("graph.edges[{i}] must be a pair"))?;
        if pair.len() != 2 {
            return Err(format!("graph.edges[{i}] must have exactly two endpoints"));
        }
        let u = pair[0]
            .as_u64()
            .ok_or_else(|| format!("graph.edges[{i}][0] must be a number"))?;
        let v2 = pair[1]
            .as_u64()
            .ok_or_else(|| format!("graph.edges[{i}][1] must be a number"))?;
        if u as usize >= num_vertices || v2 as usize >= num_vertices {
            return Err(format!("graph.edges[{i}] endpoint out of range"));
        }
        edges.push((u as usize, v2 as usize));
    }
    let feat_rows = v
        .get("features")
        .and_then(JsonValue::as_array)
        .ok_or("graph.features must be an array of rows")?;
    if feat_rows.len() != num_vertices {
        return Err(format!(
            "graph.features has {} rows for {num_vertices} vertices",
            feat_rows.len()
        ));
    }
    let mut features = Vec::with_capacity(feat_rows.len());
    let mut width = None;
    for (i, row) in feat_rows.iter().enumerate() {
        let row = row
            .as_array()
            .ok_or_else(|| format!("graph.features[{i}] must be an array"))?;
        let parsed: Option<Vec<f32>> = row.iter().map(|x| x.as_f64().map(|f| f as f32)).collect();
        let parsed = parsed.ok_or_else(|| format!("graph.features[{i}] holds a non-number"))?;
        match width {
            None => width = Some(parsed.len()),
            Some(w) if w != parsed.len() => {
                return Err(format!("graph.features[{i}] width {} != {w}", parsed.len()))
            }
            _ => {}
        }
        features.push(parsed);
    }
    if width == Some(0) {
        return Err("graph.features rows must be non-empty".into());
    }
    let out_features = v
        .get("out_features")
        .and_then(JsonValue::as_u64)
        .ok_or("graph.out_features must be a number")? as usize;
    if out_features == 0 {
        return Err("graph.out_features must be positive".into());
    }
    Ok(InlineGraph {
        num_vertices,
        edges,
        features,
        out_features,
    })
}

/// Parses one job request body.
///
/// # Errors
///
/// A human-readable description of the first problem (returned to the
/// client as an HTTP 400).
pub fn parse_job(body: &str) -> Result<JobRequest, String> {
    let v = json::parse(body).map_err(|e| format!("bad JSON: {e}"))?;
    let model = parse_model(
        v.get("model")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"model\"")?,
    )?;
    let mode = match v.get("mode").and_then(JsonValue::as_str) {
        None => ExecMode::Functional,
        Some(s) => {
            ExecMode::parse(s).ok_or_else(|| format!("unknown mode {s:?} (functional|cycle)"))?
        }
    };
    let id = v
        .get("id")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    let tenant = match v.get("tenant") {
        None => "default".to_string(),
        Some(t) => {
            let t = t.as_str().ok_or("\"tenant\" must be a string")?;
            if t.is_empty() || t.len() > 64 {
                return Err("\"tenant\" must be 1..=64 characters".into());
            }
            t.to_string()
        }
    };
    let deadline_ms = v
        .get("deadline_ms")
        .map(|d| d.as_u64().ok_or("\"deadline_ms\" must be a number"))
        .transpose()?;
    if deadline_ms == Some(0) {
        return Err("\"deadline_ms\" must be positive".into());
    }
    let input = match (v.get("input"), v.get("graph")) {
        (Some(_), Some(_)) => return Err("give \"input\" or \"graph\", not both".into()),
        (Some(name), None) => {
            let name = name.as_str().ok_or("\"input\" must be a string")?;
            let instance = v
                .get("instance")
                .map(|i| i.as_u64().ok_or("\"instance\" must be a number"))
                .transpose()?
                .unwrap_or(0) as usize;
            JobInput::Named {
                input: parse_input_name(name)?,
                instance,
            }
        }
        (None, Some(g)) => {
            if !matches!(model, ModelKind::Gcn | ModelKind::Gat) {
                return Err(format!(
                    "inline graphs support gcn and gat only (got {})",
                    model.name().to_ascii_lowercase()
                ));
            }
            JobInput::Inline(parse_inline_graph(g)?)
        }
        (None, None) => return Err("missing \"input\" (dataset name) or \"graph\"".into()),
    };
    Ok(JobRequest {
        id,
        model,
        input,
        mode,
        tenant,
        deadline_ms,
    })
}

/// Serializes an `f32` for the wire with shortest round-trip formatting
/// (bit-exact on parse-back; non-finite values become `null`, which the
/// reference never produces).
pub fn push_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Serializes output rows as a JSON array of arrays.
pub fn push_rows(out: &mut String, rows: &[Vec<f32>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, &v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_f32(out, v);
        }
        out.push(']');
    }
    out.push(']');
}

/// Renders the standard error body.
pub fn error_body(message: &str) -> String {
    let mut out = String::from("{\"status\":\"error\",\"error\":\"");
    json::escape_into(&mut out, message);
    out.push_str("\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_job() {
        let j =
            parse_job(r#"{"id":"a1","model":"gcn","input":"cora","mode":"cycle","instance":0}"#)
                .unwrap();
        assert_eq!(j.id, "a1");
        assert_eq!(j.model, ModelKind::Gcn);
        assert_eq!(j.mode, ExecMode::CycleAccurate);
        assert_eq!(
            j.input,
            JobInput::Named {
                input: "Cora",
                instance: 0
            }
        );
    }

    #[test]
    fn mode_defaults_to_functional() {
        let j = parse_job(r#"{"model":"mpnn","input":"qm9","instance":3}"#).unwrap();
        assert_eq!(j.mode, ExecMode::Functional);
        assert_eq!(
            j.input,
            JobInput::Named {
                input: "QM9_1000",
                instance: 3
            }
        );
    }

    #[test]
    fn parses_inline_graph_job() {
        let j = parse_job(
            r#"{"model":"gcn","mode":"functional","graph":{
                "num_vertices":3,"edges":[[0,1],[1,2]],
                "features":[[1,0],[0,1],[1,1]],"out_features":2}}"#,
        )
        .unwrap();
        match j.input {
            JobInput::Inline(g) => {
                assert_eq!(g.num_vertices, 3);
                assert_eq!(g.edges, vec![(0, 1), (1, 2)]);
                assert_eq!(g.features.len(), 3);
                assert_eq!(g.out_features, 2);
            }
            other => panic!("expected inline input, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_jobs() {
        assert!(parse_job("not json").is_err());
        assert!(parse_job(r#"{"input":"cora"}"#).is_err()); // no model
        assert!(parse_job(r#"{"model":"vgg","input":"cora"}"#).is_err());
        assert!(parse_job(r#"{"model":"gcn"}"#).is_err()); // no input
        assert!(parse_job(r#"{"model":"gcn","input":"cora","mode":"warp"}"#).is_err());
        // Inline graphs are vertex-output models only.
        assert!(parse_job(
            r#"{"model":"mpnn","graph":{"num_vertices":1,"edges":[],"features":[[1]],"out_features":1}}"#
        )
        .is_err());
        // Edge endpoint out of range.
        assert!(parse_job(
            r#"{"model":"gcn","graph":{"num_vertices":2,"edges":[[0,5]],"features":[[1],[1]],"out_features":1}}"#
        )
        .is_err());
    }

    #[test]
    fn tenant_and_deadline_parse_with_defaults() {
        let j = parse_job(r#"{"model":"gcn","input":"cora"}"#).unwrap();
        assert_eq!(j.tenant, "default");
        assert_eq!(j.deadline_ms, None);
        let j = parse_job(r#"{"model":"gcn","input":"cora","tenant":"acme","deadline_ms":250}"#)
            .unwrap();
        assert_eq!(j.tenant, "acme");
        assert_eq!(j.deadline_ms, Some(250));
        // Invalid forms are client errors, not silently defaulted.
        assert!(parse_job(r#"{"model":"gcn","input":"cora","tenant":""}"#).is_err());
        assert!(parse_job(r#"{"model":"gcn","input":"cora","tenant":7}"#).is_err());
        assert!(parse_job(r#"{"model":"gcn","input":"cora","deadline_ms":0}"#).is_err());
        assert!(parse_job(r#"{"model":"gcn","input":"cora","deadline_ms":"soon"}"#).is_err());
        let long = "x".repeat(65);
        assert!(parse_job(&format!(
            r#"{{"model":"gcn","input":"cora","tenant":"{long}"}}"#
        ))
        .is_err());
    }

    #[test]
    fn f32_serialization_round_trips_bits() {
        for v in [1.0f32, 0.1, -3.25e-7, f32::MIN_POSITIVE, 16_777_217.0] {
            let mut s = String::new();
            push_f32(&mut s, v);
            let back: f32 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s}");
        }
        let mut s = String::new();
        push_f32(&mut s, f32::NAN);
        assert_eq!(s, "null");
    }
}
