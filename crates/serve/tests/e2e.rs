//! End-to-end daemon tests over real sockets: functional bit-identity,
//! cycle-accurate telemetry, batching coalescence, 429 backpressure,
//! graceful drain, and the `/stats` surface.

use gnna_bench::{build_case, Scale};
use gnna_models::ModelKind;
use gnna_serve::loadgen::{fetch_stats, raw_rows, roundtrip, run_load, LoadSpec};
use gnna_serve::protocol::{push_rows, ExecMode};
use gnna_serve::queue::{QuotaSpec, TenantPolicy};
use gnna_serve::server::{serve, ServeConfig, ServerHandle};
use gnna_telemetry::json::{self, JsonValue};
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        instances: 2,
        threads: 2,
        ..ServeConfig::default()
    };
    mutate(&mut cfg);
    serve(cfg).expect("daemon boots")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = roundtrip(&mut stream, &mut reader, "POST", path, body).unwrap();
    (resp.status, resp.body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let resp = roundtrip(&mut stream, &mut reader, "GET", path, "").unwrap();
    (resp.status, resp.body)
}

#[test]
fn healthz_and_unknown_routes() {
    let h = boot(|_| {});
    let (status, body) = get(h.addr(), "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"ok\"}");
    let (status, _) = get(h.addr(), "/nope");
    assert_eq!(status, 404);
    let (status, _) = post(h.addr(), "/v1/infer", "this is not json");
    assert_eq!(status, 400);
    h.shutdown();
    h.join();
}

#[test]
fn functional_rows_are_bit_identical_to_the_reference() {
    let h = boot(|_| {});
    let (status, body) = post(
        h.addr(),
        "/v1/infer",
        r#"{"id":"f1","model":"gcn","input":"cora","mode":"functional"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let case = build_case(ModelKind::Gcn, "Cora", Scale::Smoke).unwrap();
    let mut expect = String::new();
    push_rows(&mut expect, &case.reference);
    assert_eq!(
        raw_rows(&body).unwrap(),
        expect,
        "served rows differ from the gnna-models reference bytes"
    );
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("f1"));
    assert_eq!(
        v.get("mode").and_then(JsonValue::as_str),
        Some("functional")
    );
    h.shutdown();
    h.join();
}

#[test]
fn cycle_mode_returns_rows_telemetry_and_accuracy() {
    let h = boot(|_| {});
    let (status, body) = post(
        h.addr(),
        "/v1/infer",
        r#"{"id":"c1","model":"gcn","input":"cora","mode":"cycle"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let tel = v.get("telemetry").expect("telemetry present");
    assert!(tel.get("total_cycles").and_then(JsonValue::as_u64).unwrap() > 0);
    assert!(tel.get("energy_pj").and_then(JsonValue::as_u64).unwrap() > 0);
    assert_eq!(tel.get("batch_size").and_then(JsonValue::as_u64), Some(1));
    let stalls = tel.get("stalls").expect("stall summary present");
    assert!(stalls.get("waiting_mem").is_some());
    assert!(stalls.get("no_work").is_some());
    let acc = v.get("accuracy").expect("accuracy grade present");
    let max_rel = acc.get("max_rel_err").and_then(JsonValue::as_f64).unwrap();
    assert!(
        max_rel < 1e-3,
        "simulated rows off the reference: {max_rel}"
    );
    assert_eq!(acc.get("label_flips").and_then(JsonValue::as_u64), Some(0));
    h.shutdown();
    h.join();
}

#[test]
fn cycle_response_stage_timings_decompose_the_latency() {
    let h = boot(|_| {});
    let t0 = Instant::now();
    let (status, body) = post(
        h.addr(),
        "/v1/infer",
        r#"{"id":"t1","model":"gcn","input":"cora","mode":"cycle"}"#,
    );
    let e2e_us = t0.elapsed().as_micros() as u64;
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let tel = v.get("telemetry").expect("telemetry present");
    let span = tel
        .get("span_id")
        .and_then(JsonValue::as_str)
        .expect("span_id present");
    assert!(
        !span.is_empty() && span.chars().all(|c| c.is_ascii_hexdigit()),
        "span id should be hex: {span:?}"
    );
    let stage = |name: &str| {
        tel.get(name)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing stage {name}: {body}"))
    };
    let sum = stage("queue_us") + stage("coalesce_us") + stage("simulate_us") + stage("respond_us");
    // The stage micros decompose the end-to-end latency: their sum must
    // land within 5% of the client-measured wall time (the simulate
    // stage dominates a cycle-accurate job, so connection overhead is
    // in the noise).
    assert!(sum <= e2e_us, "stage sum {sum}µs exceeds e2e {e2e_us}µs");
    assert!(
        sum as f64 >= e2e_us as f64 * 0.95,
        "stage sum {sum}µs attributes less than 95% of the {e2e_us}µs end-to-end latency"
    );

    // Span ids are per-request: a second job gets a different one.
    let (status, body2) = post(
        h.addr(),
        "/v1/infer",
        r#"{"id":"t2","model":"gcn","input":"cora","mode":"functional"}"#,
    );
    assert_eq!(status, 200, "{body2}");
    let v2 = json::parse(&body2).unwrap();
    let span2 = v2
        .get("telemetry")
        .and_then(|t| t.get("span_id"))
        .and_then(JsonValue::as_str)
        .unwrap();
    assert_ne!(span, span2);
    h.shutdown();
    h.join();
}

#[test]
fn idle_connections_are_closed_after_the_read_timeout() {
    let h = boot(|cfg| cfg.read_timeout = Duration::from_millis(100));
    let mut stream = TcpStream::connect(h.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send nothing: the daemon must hang up, not hold the handler
    // thread forever (slowloris defence).
    let start = Instant::now();
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes from an idle connection"),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset | io::ErrorKind::BrokenPipe
            ) => {}
        Err(e) => panic!("connection not closed by the read timeout: {e}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "close took {:?}",
        start.elapsed()
    );
    // Fresh connections still serve.
    let (status, _) = get(h.addr(), "/healthz");
    assert_eq!(status, 200);
    h.shutdown();
    h.join();
}

#[test]
fn trace_out_writes_request_and_batch_spans() {
    let path = std::env::temp_dir().join(format!(
        "gnna_serve_trace_{}_{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    let path_s = path.to_str().unwrap().to_string();
    let h = boot(|cfg| cfg.trace_out = Some(path_s));
    let (status, body) = post(
        h.addr(),
        "/v1/infer",
        r#"{"id":"tr1","model":"gcn","input":"cora","mode":"functional"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let span = json::parse(&body)
        .unwrap()
        .get("telemetry")
        .and_then(|t| t.get("span_id"))
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    h.shutdown();
    h.join();

    let text = std::fs::read_to_string(&path).expect("trace written on drain");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for needle in ["request", "queue_wait", "coalesce", "simulate", "respond"] {
        assert!(names.contains(&needle), "missing span {needle}: {names:?}");
    }
    // The batch span links its member job span ids by name.
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("batch[") && n.contains(&span)),
        "no batch span linking job {span}: {names:?}"
    );
}

#[test]
fn inline_graph_jobs_run_in_both_modes() {
    let h = boot(|_| {});
    let job = r#"{"id":"g1","model":"gcn","mode":"functional","graph":{
        "num_vertices":4,"edges":[[0,1],[1,2],[2,3],[3,0]],
        "features":[[1,0,0],[0,1,0],[0,0,1],[1,1,0]],"out_features":2}}"#;
    let (status, body) = post(h.addr(), "/v1/infer", job);
    assert_eq!(status, 200, "{body}");
    let functional_rows = raw_rows(&body).unwrap().to_string();
    assert!(functional_rows.starts_with("[["));

    let cycle_job = job
        .replace("\"functional\"", "\"cycle\"")
        .replace("g1", "g2");
    let (status, body) = post(h.addr(), "/v1/infer", &cycle_job);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert!(
        v.get("telemetry")
            .and_then(|t| t.get("total_cycles"))
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    let acc = v.get("accuracy").unwrap();
    assert!(acc.get("max_rel_err").and_then(JsonValue::as_f64).unwrap() < 1e-3);

    // Out-of-range instance on a named dataset → 400, not a crash.
    let (status, _) = post(
        h.addr(),
        "/v1/infer",
        r#"{"model":"gcn","input":"cora","instance":99}"#,
    );
    assert_eq!(status, 400);
    h.shutdown();
    h.join();
}

#[test]
fn concurrent_functional_jobs_coalesce_into_batches() {
    // One instance, generous flush: 8 concurrent jobs for the same
    // dataset must meet in a batch while the first executes.
    let h = boot(|cfg| {
        cfg.instances = 1;
        cfg.max_batch = 8;
        cfg.flush = Duration::from_millis(150);
    });
    let spec = LoadSpec {
        jobs: 8,
        concurrency: 8,
        model: ModelKind::Gcn,
        input: "Cora",
        dataset_instances: 1,
        mode: ExecMode::Functional,
    };
    let outcome = run_load(h.addr(), &spec).unwrap();
    assert_eq!(outcome.report.ok, 8);
    // All 8 answered the same reference bytes.
    let first = outcome.rows_by_id.values().next().unwrap();
    assert!(outcome.rows_by_id.values().all(|r| r == first));
    let stats = fetch_stats(h.addr()).unwrap();
    let max_batch = stats
        .get("serve.max_batch_observed")
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert!(max_batch >= 2, "no coalescing observed: {max_batch}");
    h.shutdown();
    h.join();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // Tiny system: one instance, no batching, one queue slot. Slow
    // cycle jobs guarantee the queue is still busy when the burst hits.
    let h = boot(|cfg| {
        cfg.instances = 1;
        cfg.max_batch = 1;
        cfg.queue_cap = 1;
        cfg.flush = Duration::ZERO;
    });
    let body = r#"{"model":"gcn","input":"cora","mode":"cycle"}"#;
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let addr = h.addr();
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || post(addr, "/v1/infer", body).0))
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });
    assert!(
        statuses.contains(&429),
        "burst of 6 on a 1-slot queue produced no 429: {statuses:?}"
    );
    assert!(statuses.contains(&200), "{statuses:?}");
    // The handler advertises Retry-After on the 429 path.
    let mut saw_retry_after = false;
    for _ in 0..6 {
        let mut stream = TcpStream::connect(h.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = roundtrip(&mut stream, &mut reader, "POST", "/v1/infer", body).unwrap();
        if resp.status == 429 {
            // The value is pressure-derived now, but it must parse and
            // can never be 0 seconds.
            let retry_after: u64 = resp
                .header("retry-after")
                .expect("429 carries Retry-After")
                .parse()
                .expect("Retry-After is an integer");
            assert!(retry_after >= 1, "Retry-After must never be 0");
            saw_retry_after = true;
            break;
        }
    }
    let stats = fetch_stats(h.addr()).unwrap();
    let rejected = stats
        .get("serve.rejected_429")
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert!(rejected >= 1, "stats missed the rejections");
    assert!(saw_retry_after || rejected >= 1);
    h.shutdown();
    h.join();
}

#[test]
fn stats_surface_reports_throughput_latency_and_queues() {
    let h = boot(|_| {});
    for i in 0..3 {
        let (status, _) = post(
            h.addr(),
            "/v1/infer",
            &format!(r#"{{"id":"s{i}","model":"gcn","input":"cora","mode":"functional"}}"#),
        );
        assert_eq!(status, 200);
    }
    let stats = fetch_stats(h.addr()).unwrap();
    assert!(
        stats
            .get("serve.requests")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 3
    );
    assert!(stats.get("serve.ok").and_then(JsonValue::as_u64).unwrap() >= 3);
    assert!(
        stats
            .get("serve.req_per_s")
            .and_then(JsonValue::as_f64)
            .unwrap()
            > 0.0
    );
    let p99 = stats
        .get("serve.latency_p99_us")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(p99 > 0.0);
    let p999 = stats
        .get("serve.latency_p999_us")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(p999 >= p99, "p99.9 ({p999}) below p99 ({p99})");
    let hist = stats.get("serve.latency_us").expect("latency histogram");
    assert!(hist.get("count").and_then(JsonValue::as_u64).unwrap() >= 3);
    assert!(stats.get("serve.batch_size").is_some());
    // Queue depth gauges exist for the whole daemon and per instance.
    assert!(stats.get("serve.queue_depth").is_some());
    assert!(stats.get("serve.queue_depth.instance0").is_some());
    assert!(stats.get("serve.queue_depth.instance1").is_some());
    h.shutdown();
    h.join();
}

#[test]
fn shutdown_drains_in_flight_jobs_then_refuses() {
    let h = boot(|cfg| {
        cfg.instances = 1;
        cfg.max_batch = 1;
        cfg.queue_cap = 8;
        cfg.flush = Duration::ZERO;
    });
    let addr = h.addr();
    // Park a couple of slow jobs, then trigger shutdown while they run.
    let workers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                post(
                    addr,
                    "/v1/infer",
                    &format!(r#"{{"id":"d{i}","model":"gcn","input":"cora","mode":"cycle"}}"#),
                )
            })
        })
        .collect();
    // Give the jobs time to enter the queue before draining.
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = post(addr, "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    for w in workers {
        let (status, body) = w.join().unwrap();
        assert_eq!(status, 200, "in-flight job dropped during drain: {body}");
    }
    h.join();
    // The daemon is gone: new connections fail or are refused.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            let mut reader = BufReader::new(s.try_clone().unwrap());
            assert!(
                roundtrip(&mut s, &mut reader, "GET", "/healthz", "").is_err(),
                "daemon still answering after drain"
            );
        }
    }
}

#[test]
fn mixed_mode_and_model_jobs_share_the_daemon() {
    let h = boot(|_| {});
    let jobs = [
        r#"{"id":"m0","model":"gcn","input":"cora","mode":"functional"}"#,
        r#"{"id":"m1","model":"gcn","input":"cora","mode":"cycle"}"#,
        r#"{"id":"m2","model":"gat","input":"cora","mode":"functional"}"#,
        r#"{"id":"m3","model":"mpnn","input":"qm9","instance":3,"mode":"functional"}"#,
    ];
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let addr = h.addr();
        let handles: Vec<_> = jobs
            .iter()
            .map(|j| scope.spawn(move || post(addr, "/v1/infer", j)))
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });
    for (i, (status, body)) in bodies.iter().enumerate() {
        assert_eq!(*status, 200, "job {i}: {body}");
        let v = json::parse(body).unwrap();
        assert_eq!(
            v.get("id").and_then(JsonValue::as_str),
            Some(format!("m{i}").as_str())
        );
    }
    // MPNN molecule 3's functional answer is its exact reference row.
    let case = build_case(ModelKind::Mpnn, "QM9_1000", Scale::Smoke).unwrap();
    let mut expect = String::new();
    push_rows(&mut expect, &[case.reference[3].clone()]);
    assert_eq!(raw_rows(&bodies[3].1).unwrap(), expect);
    h.shutdown();
    h.join();
}

#[test]
fn tenant_quota_throttles_with_429_and_retry_after() {
    // A 1-job/s bucket with burst 2: the third immediate job is
    // throttled, other tenants are unaffected.
    let h = boot(|cfg| {
        cfg.policy = TenantPolicy {
            default_spec: QuotaSpec::unlimited(),
            tenants: vec![(
                "metered".to_string(),
                QuotaSpec {
                    rate_per_s: 1.0,
                    burst: 2.0,
                    weight: 1,
                },
            )],
        };
    });
    let body = r#"{"model":"gcn","input":"cora","mode":"functional","tenant":"metered"}"#;
    let mut statuses = Vec::new();
    let mut retry_after = None;
    for _ in 0..3 {
        let mut stream = TcpStream::connect(h.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = roundtrip(&mut stream, &mut reader, "POST", "/v1/infer", body).unwrap();
        if resp.status == 429 {
            retry_after = resp.header("retry-after").map(str::to_string);
        }
        statuses.push(resp.status);
    }
    assert_eq!(&statuses[..2], &[200, 200], "burst of 2 must be admitted");
    assert_eq!(statuses[2], 429, "third job must be throttled");
    let ra: u64 = retry_after
        .expect("throttle carries Retry-After")
        .parse()
        .unwrap();
    assert!(ra >= 1);
    // A different tenant sails through.
    let (status, _) = post(
        h.addr(),
        "/v1/infer",
        r#"{"model":"gcn","input":"cora","mode":"functional","tenant":"calm"}"#,
    );
    assert_eq!(status, 200, "other tenants must not share the bucket");
    let stats = fetch_stats(h.addr()).unwrap();
    assert!(
        stats
            .get("serve.tenant.metered.throttled")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1,
        "per-tenant throttle counter missing"
    );
    assert!(
        stats
            .get("serve.tenant.calm.admitted")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );
    h.shutdown();
    h.join();
}

#[test]
fn deadline_unmeetable_jobs_are_shed_at_admission() {
    // One slot-at-a-time worker and a parked backlog: a job with a
    // 1 ms deadline sees a wait estimate above it and is shed with 429.
    let h = boot(|cfg| {
        cfg.instances = 1;
        cfg.max_batch = 1;
        cfg.queue_cap = 16;
        cfg.flush = Duration::ZERO;
    });
    let addr = h.addr();
    let slow = r#"{"model":"gcn","input":"cora","mode":"cycle"}"#;
    let workers: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || post(addr, "/v1/infer", slow)))
        .collect();
    // Wait until the backlog is visible, then try an unmeetable
    // deadline. The wait estimate needs one measured batch to be
    // calibrated, so poll briefly.
    let mut shed = None;
    for _ in 0..100 {
        let (status, body) = post(
            addr,
            "/v1/infer",
            r#"{"model":"gcn","input":"cora","mode":"cycle","deadline_ms":1}"#,
        );
        if status == 429 && body.contains("deadline unmeetable") {
            shed = Some(body);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let body = shed.expect("a 1 ms deadline behind a cycle backlog must be shed");
    assert!(body.contains("estimated wait"), "{body}");
    let stats = fetch_stats(addr).unwrap();
    assert!(
        stats
            .get("serve.shed_deadline")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );
    for w in workers {
        let (status, _) = w.join().unwrap();
        assert_eq!(status, 200);
    }
    h.shutdown();
    h.join();
}

#[test]
fn degrade_watermark_answers_cycle_jobs_functionally_flagged() {
    // Watermark 1 on a single serialized queue: with a cycle job
    // executing and one queued, later cycle jobs degrade to functional
    // and say so.
    let h = boot(|cfg| {
        cfg.instances = 1;
        cfg.max_batch = 1;
        cfg.queue_cap = 32;
        cfg.flush = Duration::ZERO;
        cfg.degrade_watermark = 1;
    });
    let addr = h.addr();
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    post(
                        addr,
                        "/v1/infer",
                        &format!(
                            r#"{{"id":"dg{i}","model":"gcn","input":"cora","mode":"cycle"}}"#
                        ),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });
    let mut degraded = 0;
    let mut full_cycle = 0;
    for (status, body) in &bodies {
        assert_eq!(*status, 200, "{body}");
        let v = json::parse(body).unwrap();
        if matches!(v.get("degraded"), Some(JsonValue::Bool(true))) {
            degraded += 1;
            // A degraded response is functional: no accuracy grade, no
            // cycle telemetry, mode says what actually ran.
            assert_eq!(v.get("mode").and_then(JsonValue::as_str), Some("functional"));
            assert!(v.get("accuracy").is_none(), "degraded jobs skip accuracy");
        } else {
            full_cycle += 1;
            assert_eq!(v.get("mode").and_then(JsonValue::as_str), Some("cycle"));
        }
    }
    assert!(
        degraded >= 1,
        "a 6-deep cycle burst past watermark 1 must degrade some jobs"
    );
    assert!(full_cycle >= 1, "the head job should still run full cycle");
    let stats = fetch_stats(addr).unwrap();
    assert!(
        stats
            .get("serve.degraded")
            .and_then(JsonValue::as_u64)
            .unwrap() as usize
            == degraded
    );
    h.shutdown();
    h.join();
}

#[test]
fn max_conns_refuses_excess_connections_with_503() {
    let h = boot(|cfg| cfg.max_conns = 2);
    // Two held-open connections occupy the limit.
    let hold1 = TcpStream::connect(h.addr()).unwrap();
    let hold2 = TcpStream::connect(h.addr()).unwrap();
    // Give the acceptor a beat to count them.
    std::thread::sleep(Duration::from_millis(100));
    let mut refused = false;
    for _ in 0..20 {
        let mut stream = TcpStream::connect(h.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        match roundtrip(&mut stream, &mut reader, "GET", "/healthz", "") {
            Ok(resp) if resp.status == 503 => {
                assert_eq!(resp.header("retry-after"), Some("1"));
                refused = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(refused, "third connection past --max-conns 2 never saw 503");
    drop(hold1);
    drop(hold2);
    // With the held connections gone, service resumes.
    let mut ok = false;
    for _ in 0..50 {
        let mut stream = TcpStream::connect(h.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        if let Ok(resp) = roundtrip(&mut stream, &mut reader, "GET", "/healthz", "") {
            if resp.status == 200 {
                ok = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(ok, "daemon did not recover after connections freed");
    let stats_ok = {
        // The stats fetch itself needs a free slot; retry briefly.
        let mut v = None;
        for _ in 0..50 {
            if let Ok(s) = fetch_stats(h.addr()) {
                v = Some(s);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        v.expect("stats unreachable after recovery")
    };
    assert!(
        stats_ok
            .get("serve.conn_rejected")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );
    h.shutdown();
    h.join();
}

#[cfg(target_os = "linux")]
#[test]
fn stats_report_a_live_rss_gauge() {
    let h = boot(|_| {});
    let stats = fetch_stats(h.addr()).unwrap();
    let rss = stats
        .get("serve.mem_rss_bytes")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(rss > 0.0, "RSS gauge should be live on linux");
    let peak = stats
        .get("serve.mem_rss_peak_bytes")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!(peak >= rss);
    h.shutdown();
    h.join();
}

#[test]
fn disconnected_clients_jobs_are_cancelled_before_execution() {
    // Serialized worker; park a slow cycle job, queue a second from a
    // client that immediately hangs up, then measure that the queue
    // drains without executing the abandoned job.
    let h = boot(|cfg| {
        cfg.instances = 1;
        cfg.max_batch = 1;
        cfg.queue_cap = 8;
        cfg.flush = Duration::ZERO;
    });
    let addr = h.addr();
    let runner = std::thread::spawn(move || {
        post(
            addr,
            "/v1/infer",
            r#"{"id":"hold","model":"gcn","input":"cora","mode":"cycle"}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(50));
    // Fire-and-hang-up: write the request, then drop the socket.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let body = r#"{"id":"ghost","model":"gat","input":"cora","mode":"cycle"}"#;
        use std::io::Write;
        write!(
            s,
            "POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        s.flush().unwrap();
        // Closed before the response: the handler's probe sees EOF.
    }
    let (status, _) = runner.join().unwrap();
    assert_eq!(status, 200);
    // The cancelled counter catches up once the worker passes the
    // abandoned job (or the handler notices first); poll /stats.
    let mut cancelled = 0;
    for _ in 0..100 {
        let stats = fetch_stats(addr).unwrap();
        cancelled = stats
            .get("serve.cancelled")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let reqs = stats
            .get("serve.client_errors")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if cancelled >= 1 || reqs >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // Either the dequeue path dropped it (serve.cancelled) or the
    // handler recorded the disconnect as a client error (499); both
    // mean the ghost job did not consume a full simulation.
    let stats = fetch_stats(addr).unwrap();
    let client_errors = stats
        .get("serve.client_errors")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    assert!(
        cancelled >= 1 || client_errors >= 1,
        "abandoned job neither cancelled nor counted: {stats:?}"
    );
    h.shutdown();
    h.join();
}
