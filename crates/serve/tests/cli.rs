//! Command-line conformance for the serve binary — same contract the
//! bench binaries are held to in `crates/bench/tests/cli.rs`.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gnna-serve"))
        .args(args)
        .output()
        .expect("cannot spawn gnna-serve")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for flag in ["--help", "-h"] {
        let out = run(&[flag]);
        assert!(out.status.success(), "gnna-serve {flag} exited nonzero");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage: gnna-serve"), "{flag}: {err}");
    }
}

#[test]
fn version_exits_zero_and_prints_the_workspace_version() {
    for flag in ["--version", "-V"] {
        let out = run(&[flag]);
        assert!(out.status.success(), "gnna-serve {flag} exited nonzero");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            stdout,
            format!("gnna-serve {}\n", env!("CARGO_PKG_VERSION"))
        );
    }
}

#[test]
fn unknown_options_exit_nonzero_with_usage() {
    let out = run(&["--no-such-flag"]);
    assert!(!out.status.success(), "gnna-serve accepted an unknown flag");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option --no-such-flag"), "{err}");
    assert!(err.contains("usage: gnna-serve"), "{err}");
}
