//! Command-line conformance for the serve binary — same contract the
//! bench binaries are held to in `crates/bench/tests/cli.rs`.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gnna-serve"))
        .args(args)
        .output()
        .expect("cannot spawn gnna-serve")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for flag in ["--help", "-h"] {
        let out = run(&[flag]);
        assert!(out.status.success(), "gnna-serve {flag} exited nonzero");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage: gnna-serve"), "{flag}: {err}");
    }
}

#[test]
fn help_documents_the_overload_and_soak_flags() {
    let out = run(&["--help"]);
    let err = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--tenant-quota",
        "--max-conns",
        "--degrade-watermark",
        "--soak-secs",
        "--soak-out",
        "--soak-light-rate",
        "--soak-flood-rate",
        "--soak-max-fairness",
        "--soak-max-rss-growth",
    ] {
        assert!(err.contains(flag), "usage is missing {flag}:\n{err}");
    }
}

#[test]
fn malformed_tenant_quota_is_rejected_with_a_reason() {
    for bad in ["=5", "a=1:0", "a=1:2:0", "a=-3", "a=1:2:3:4"] {
        let out = run(&["--tenant-quota", bad]);
        assert!(
            !out.status.success(),
            "gnna-serve accepted bad quota {bad:?}"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("quota"), "{bad}: {err}");
    }
}

#[test]
fn zero_soak_secs_is_rejected() {
    let out = run(&["--soak-secs", "0"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--soak-secs must be positive"), "{err}");
}

#[test]
fn version_exits_zero_and_prints_the_workspace_version() {
    for flag in ["--version", "-V"] {
        let out = run(&[flag]);
        assert!(out.status.success(), "gnna-serve {flag} exited nonzero");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            stdout,
            format!("gnna-serve {}\n", env!("CARGO_PKG_VERSION"))
        );
    }
}

#[test]
fn unknown_options_exit_nonzero_with_usage() {
    let out = run(&["--no-such-flag"]);
    assert!(!out.status.success(), "gnna-serve accepted an unknown flag");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option --no-such-flag"), "{err}");
    assert!(err.contains("usage: gnna-serve"), "{err}");
}
