//! Deterministic fairness harness over the pure [`Scheduler`] core.
//!
//! No sockets, no sleeps, no wall clock: a virtual microsecond clock
//! drives admissions and a fixed per-batch service cost drives
//! completions, so every run of these tests sees the identical
//! schedule. This is where the PR's fairness bound is test-enforced:
//! with one flooding tenant and one well-behaved tenant under quota,
//! the light tenant's p99 latency may not exceed **2×** its isolated
//! baseline, and a graceful drain during active shedding loses zero
//! admitted jobs.

use gnna_serve::protocol::parse_job;
use gnna_serve::queue::{Job, JobOutcome, PushError, QuotaSpec, Scheduler, TenantPolicy};
use std::sync::mpsc;

/// Virtual service cost of one batch, microseconds. Constant and
/// mode-independent: the harness measures scheduling order, not
/// simulator speed.
const BATCH_SERVICE_US: u64 = 10_000;

fn job(tenant: &str, model: &str, i: usize) -> (Job, mpsc::Receiver<JobOutcome>) {
    let body = format!(
        r#"{{"id":"{tenant}-{i}","model":"{model}","input":"cora","mode":"cycle","tenant":"{tenant}"}}"#
    );
    let (tx, rx) = mpsc::channel();
    (Job::new(parse_job(&body).unwrap(), tx, i as u64), rx)
}

/// One simulated tenant: a fixed arrival schedule in virtual time.
struct Arrivals {
    tenant: &'static str,
    model: &'static str,
    /// Virtual arrival timestamps, microseconds, ascending.
    times_us: Vec<u64>,
}

fn light_schedule(jobs: usize) -> Arrivals {
    Arrivals {
        tenant: "light",
        model: "gat",
        // One job every 50 ms — comfortably under any quota.
        times_us: (0..jobs).map(|i| i as u64 * 50_000).collect(),
    }
}

fn flood_schedule(jobs: usize) -> Arrivals {
    Arrivals {
        tenant: "flood",
        model: "gcn",
        // A job every 2 ms — 25× the light tenant's rate.
        times_us: (0..jobs).map(|i| i as u64 * 2_000).collect(),
    }
}

/// Outcome of one simulated run: per-tenant sorted completion
/// latencies (virtual µs) plus admission bookkeeping.
#[derive(Debug, Default)]
struct RunStats {
    light_latencies: Vec<u64>,
    admitted: usize,
    rejected: usize,
    served: usize,
}

/// Drives the scheduler with merged arrival schedules and a
/// fixed-cost server until every arrival is admitted or rejected and
/// the backlog drains. Completions are processed at batch granularity:
/// the server finishes a batch every `BATCH_SERVICE_US`.
fn simulate(policy: TenantPolicy, schedules: &[Arrivals], max_batch: usize) -> RunStats {
    let mut sched = Scheduler::new(64, policy, 0);
    sched.note_service(BATCH_SERVICE_US);

    // Merge arrivals into one ascending (time, schedule_idx, job_idx)
    // stream; ties break by schedule order — deterministic.
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    for (si, s) in schedules.iter().enumerate() {
        for (ji, &t) in s.times_us.iter().enumerate() {
            events.push((t, si, ji));
        }
    }
    events.sort();

    let mut stats = RunStats::default();
    // Admitted jobs' receivers keyed by id, so latency is measured from
    // virtual enqueue to virtual completion.
    let mut enqueue_time: std::collections::HashMap<String, u64> = Default::default();
    let mut pending = std::collections::HashMap::new();
    let mut next_service_done = BATCH_SERVICE_US;
    let mut now_us;
    let mut ei = 0;

    // Run until all arrivals are processed and the queue is dry.
    loop {
        // Next arrival or next service completion, whichever is first.
        let next_arrival = events.get(ei).map(|&(t, _, _)| t);
        let service_pending = sched.depth() > 0;
        now_us = match (next_arrival, service_pending) {
            (Some(t), true) => t.min(next_service_done),
            (Some(t), false) => t,
            (None, true) => next_service_done,
            (None, false) => break,
        };
        // Admissions at this instant come first (the daemon admits on
        // arrival; the worker pops afterwards).
        while let Some(&(t, si, ji)) = events.get(ei) {
            if t > now_us {
                break;
            }
            let s = &schedules[si];
            let (j, rx) = job(s.tenant, s.model, ji);
            let id = j.request.id.clone();
            match sched.admit(j, t) {
                Ok(_) => {
                    stats.admitted += 1;
                    enqueue_time.insert(id.clone(), t);
                    pending.insert(id, rx);
                }
                Err(
                    PushError::Throttled { .. }
                    | PushError::Full { .. }
                    | PushError::DeadlineUnmeetable { .. },
                ) => stats.rejected += 1,
                Err(PushError::Closed(_)) => stats.rejected += 1,
            }
            ei += 1;
        }
        // Service completion at this instant.
        if service_pending && now_us >= next_service_done {
            if let Some(batch) = sched.next_batch(max_batch) {
                for j in &batch {
                    stats.served += 1;
                    if j.request.tenant == "light" {
                        let t0 = enqueue_time[&j.request.id];
                        stats.light_latencies.push(now_us - t0);
                    }
                    pending.remove(&j.request.id);
                }
            }
            next_service_done = now_us + BATCH_SERVICE_US;
        } else if !service_pending {
            // Queue was empty until this arrival: the server starts a
            // fresh service interval now.
            next_service_done = now_us + BATCH_SERVICE_US;
        }
    }
    stats.light_latencies.sort_unstable();
    stats
}

fn p99(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * 0.99).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The quota both fairness runs use: the flooder is admitted at 100/s
/// with a small burst; the light tenant is unlimited.
fn fairness_policy() -> TenantPolicy {
    TenantPolicy {
        default_spec: QuotaSpec::unlimited(),
        tenants: vec![(
            "flood".to_string(),
            QuotaSpec {
                rate_per_s: 100.0,
                burst: 5.0,
                weight: 1,
            },
        )],
    }
}

#[test]
fn flooding_tenant_cannot_push_light_p99_past_2x_isolated() {
    // Isolated baseline: the light tenant alone.
    let isolated = simulate(fairness_policy(), &[light_schedule(100)], 4);
    assert_eq!(isolated.rejected, 0, "isolated light jobs must all admit");
    assert_eq!(isolated.served, 100);
    let isolated_p99 = p99(&isolated.light_latencies).max(1);

    // Mixed run: same light schedule plus a 25×-rate flooder.
    let mixed = simulate(
        fairness_policy(),
        &[light_schedule(100), flood_schedule(2500)],
        4,
    );
    assert_eq!(
        mixed.light_latencies.len(),
        100,
        "every light job must be admitted and served under flood"
    );
    assert!(
        mixed.rejected > 0,
        "the flooder must be throttled (otherwise the quota did nothing)"
    );
    let mixed_p99 = p99(&mixed.light_latencies);

    let ratio = mixed_p99 as f64 / isolated_p99 as f64;
    assert!(
        ratio <= 2.0,
        "fairness violated: light p99 {mixed_p99}µs under flood vs {isolated_p99}µs \
         isolated = {ratio:.2}× (bound 2×)"
    );
}

#[test]
fn drr_weights_shift_service_share_deterministically() {
    // Two backlogged tenants, weight 3 vs 1: over one DRR round of
    // max_batch-1 pops, the heavy tenant gets ~3× the pops.
    let policy = TenantPolicy {
        default_spec: QuotaSpec::unlimited(),
        tenants: vec![
            ("heavy".to_string(), QuotaSpec { rate_per_s: 0.0, burst: 1.0, weight: 3 }),
            ("lite".to_string(), QuotaSpec { rate_per_s: 0.0, burst: 1.0, weight: 1 }),
        ],
    };
    let mut sched = Scheduler::new(256, policy, 0);
    let mut rxs = Vec::new();
    for i in 0..40 {
        let (j, rx) = job("heavy", "gcn", i);
        sched.admit(j, 0).unwrap();
        rxs.push(rx);
        let (j, rx) = job("lite", "gat", i);
        sched.admit(j, 0).unwrap();
        rxs.push(rx);
    }
    // Pops without coalescing expose the raw DRR order.
    let mut heavy = 0;
    let mut lite = 0;
    for _ in 0..16 {
        let batch = sched.next_batch(1).unwrap();
        match batch[0].request.tenant.as_str() {
            "heavy" => heavy += 1,
            "lite" => lite += 1,
            other => panic!("unknown tenant {other}"),
        }
    }
    assert_eq!(heavy, 12, "weight-3 tenant should take 3/4 of the pops");
    assert_eq!(lite, 4);
    // Replays are identical — the harness is deterministic.
    let mut sched2 = Scheduler::new(256, fairness_policy(), 0);
    let mut sched3 = Scheduler::new(256, fairness_policy(), 0);
    for i in 0..20 {
        let (j, _rx) = job("flood", "gcn", i);
        let _ = sched2.admit(j, (i as u64) * 1_000);
        let (j, _rx) = job("flood", "gcn", i);
        let _ = sched3.admit(j, (i as u64) * 1_000);
    }
    loop {
        let a = sched2.next_batch(4).map(|b| {
            b.iter().map(|j| j.request.id.clone()).collect::<Vec<_>>()
        });
        let b = sched3.next_batch(4).map(|b| {
            b.iter().map(|j| j.request.id.clone()).collect::<Vec<_>>()
        });
        assert_eq!(a, b, "same inputs must give the same schedule");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn graceful_drain_during_shedding_loses_zero_admitted_jobs() {
    // Flood a cap-8 scheduler so admissions are actively shedding, then
    // close mid-stream and drain: every job either rejected at
    // admission or served — none vanish.
    let mut sched = Scheduler::new(8, fairness_policy(), 0);
    sched.note_service(BATCH_SERVICE_US);
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut served = 0usize;
    let total = 500usize;
    for i in 0..total {
        let t = i as u64 * 500; // 2000 jobs/s — far over quota and cap
        if i == total / 2 {
            sched.close(); // graceful shutdown lands mid-shedding
        }
        let (j, _rx) = job(if i % 3 == 0 { "light" } else { "flood" }, "gcn", i);
        match sched.admit(j, t) {
            Ok(_) => admitted += 1,
            Err(_) => rejected += 1,
        }
        // The worker keeps draining concurrently: one batch per few
        // arrivals, like a slow server under a fast flood.
        if i % 5 == 4 {
            if let Some(batch) = sched.next_batch(4) {
                served += batch.len();
            }
        }
    }
    // Final drain after close: the backlog is still served.
    while let Some(batch) = sched.next_batch(4) {
        served += batch.len();
    }
    assert_eq!(admitted + rejected, total, "every job got a verdict");
    assert!(rejected > 0, "the run must actually have been shedding");
    assert_eq!(
        served, admitted,
        "drain lost admitted jobs: served {served} of {admitted}"
    );
    assert_eq!(sched.depth(), 0);
}
