//! Property-based tests for the dataflow mapper and the §II analysis.

use gnna_dnn::gcn_analysis::analyze_gcn;
use gnna_dnn::{mapper, EyerissConfig, GcnShape, MatmulShape};
use proptest::prelude::*;

fn shape_strategy() -> impl Strategy<Value = MatmulShape> {
    (1usize..2000, 1usize..2000, 1usize..256).prop_map(|(m, k, n)| MatmulShape { m, k, n })
}

proptest! {
    /// Compute cycles are at least MACs / PEs (can't beat the array),
    /// and utilisation stays in (0, 1].
    #[test]
    fn mapper_respects_peak_throughput(shape in shape_strategy()) {
        let cfg = EyerissConfig::default();
        let m = mapper::map_matmul(&cfg, shape);
        let floor = shape.macs().div_ceil(cfg.num_pes as u64);
        prop_assert!(m.compute_cycles >= floor);
        prop_assert!(m.pe_utilization > 0.0 && m.pe_utilization <= 1.0 + 1e-12);
        prop_assert_eq!(m.macs, shape.macs());
    }

    /// DRAM reads never go below compulsory traffic (each operand once)
    /// and writes equal the output exactly.
    #[test]
    fn mapper_traffic_bounds(shape in shape_strategy()) {
        let cfg = EyerissConfig::default();
        let m = mapper::map_matmul(&cfg, shape);
        prop_assert!(m.dram_read_bytes >= (shape.a_words() + shape.b_words()) * 4);
        prop_assert_eq!(m.dram_write_bytes, shape.c_words() * 4);
    }

    /// Latency at finite bandwidth is monotone: more bandwidth never
    /// hurts, and unlimited is the limit.
    #[test]
    fn latency_monotone_in_bandwidth(shape in shape_strategy()) {
        let cfg = EyerissConfig::default();
        let m = mapper::map_matmul(&cfg, shape);
        let l68 = m.latency_at_bandwidth(&cfg, 68e9);
        let l544 = m.latency_at_bandwidth(&cfg, 544e9);
        let unl = m.latency_unlimited(&cfg);
        prop_assert!(l68 >= l544);
        prop_assert!(l544 >= unl);
    }

    /// Growing any matmul dimension never reduces compute cycles.
    #[test]
    fn compute_cycles_monotone_in_dims(shape in shape_strategy(), grow in 1usize..4) {
        let cfg = EyerissConfig::default();
        let base = mapper::map_matmul(&cfg, shape);
        let bigger = mapper::map_matmul(&cfg, MatmulShape { m: shape.m * grow, ..shape });
        prop_assert!(bigger.compute_cycles >= base.compute_cycles);
        let deeper = mapper::map_matmul(&cfg, MatmulShape { k: shape.k * grow, ..shape });
        prop_assert!(deeper.compute_cycles >= base.compute_cycles);
    }

    /// The §II GCN analysis is internally consistent for arbitrary graph
    /// statistics: useful ≤ total everywhere, and sparser graphs have a
    /// lower useful-compute fraction.
    #[test]
    fn gcn_analysis_useful_bounded(
        nodes in 64usize..5000,
        in_features in 8usize..1024,
        out in 2usize..16,
        density_ppm in 100u64..100_000,
    ) {
        let nnz = ((nodes as u64 * nodes as u64) * density_ppm / 1_000_000).max(nodes as u64);
        let shape = GcnShape {
            nodes,
            in_features,
            hidden: 16,
            out_features: out,
            adjacency_nnz: nnz,
        };
        let cfg = EyerissConfig::default();
        let r = analyze_gcn(&cfg, &shape, 68e9);
        prop_assert!(r.useful_compute_fraction() <= 1.0);
        prop_assert!(r.useful_traffic_fraction() <= 1.0);
        prop_assert!(r.mean_bandwidth_useful <= r.mean_bandwidth_total + 1.0);
        prop_assert!(r.pe_utilization_useful <= r.pe_utilization_total + 1e-12);
        prop_assert!(r.latency_bw_limited_s >= r.latency_unlimited_s);

        // Halving the non-zeros cannot raise the useful fraction.
        let sparser = GcnShape { adjacency_nnz: nnz / 2, ..shape };
        let r2 = analyze_gcn(&cfg, &sparser, 68e9);
        prop_assert!(r2.useful_compute_fraction() <= r.useful_compute_fraction() + 1e-12);
    }
}
