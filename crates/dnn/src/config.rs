use std::fmt;

/// Hardware parameters of the Eyeriss-like spatial DNN accelerator —
/// Table I of the paper.
///
/// The default value reproduces Table I exactly: 182 PEs in a 13 × 14
/// array, 512 B register file per PE, a 108 kB global buffer, 32-bit
/// fixed-point precision, and (per §II / Table II) an aggressive 2.4 GHz
/// clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyerissConfig {
    /// Number of processing elements (182).
    pub num_pes: usize,
    /// PE array rows (13).
    pub pe_rows: usize,
    /// PE array columns (14).
    pub pe_cols: usize,
    /// Per-PE register file size in bytes (512).
    pub register_file_bytes: usize,
    /// Shared global buffer size in bytes (108 kB).
    pub global_buffer_bytes: usize,
    /// Datapath word width in bytes (4 — 32-bit fixed point).
    pub word_bytes: usize,
    /// Clock frequency in Hz (2.4 GHz in §II).
    pub clock_hz: f64,
}

impl Default for EyerissConfig {
    fn default() -> Self {
        EyerissConfig {
            num_pes: 182,
            pe_rows: 13,
            pe_cols: 14,
            register_file_bytes: 512,
            global_buffer_bytes: 108 * 1024,
            word_bytes: 4,
            clock_hz: 2.4e9,
        }
    }
}

impl EyerissConfig {
    /// Global buffer capacity in words.
    pub fn global_buffer_words(&self) -> usize {
        self.global_buffer_bytes / self.word_bytes
    }

    /// Peak multiply–accumulate throughput in MACs per second.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.num_pes as f64 * self.clock_hz
    }

    /// Converts a cycle count to seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl fmt::Display for EyerissConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EyerissConfig(PEs={} ({}x{}), RF={}B, GB={}kB, {}-bit, {:.1}GHz)",
            self.num_pes,
            self.pe_rows,
            self.pe_cols,
            self.register_file_bytes,
            self.global_buffer_bytes / 1024,
            self.word_bytes * 8,
            self.clock_hz / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = EyerissConfig::default();
        assert_eq!(c.num_pes, 182);
        assert_eq!(c.pe_rows * c.pe_cols, 182);
        assert_eq!(c.register_file_bytes, 512);
        assert_eq!(c.global_buffer_bytes, 108 * 1024);
        assert_eq!(c.word_bytes, 4);
        assert_eq!(c.clock_hz, 2.4e9);
    }

    #[test]
    fn derived_quantities() {
        let c = EyerissConfig::default();
        assert_eq!(c.global_buffer_words(), 27 * 1024);
        assert!((c.peak_macs_per_second() - 182.0 * 2.4e9).abs() < 1.0);
        assert!((c.cycles_to_seconds(2_400_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_pes() {
        assert!(EyerissConfig::default().to_string().contains("PEs=182"));
    }
}
