//! An analytical model of an Eyeriss-like spatial DNN accelerator, and the
//! Section II "do GNNs need a new accelerator?" analysis built on it.
//!
//! The paper models GCN on a 182-PE spatial accelerator (Table I) using
//! NN-Dataflow for dataflow scheduling, and reports inference latency
//! (Table II) plus off-chip bandwidth and PE utilisation split into total
//! vs *useful* — counting only non-zero adjacency entries (Figure 2).
//! This crate reproduces that methodology:
//!
//! * [`EyerissConfig`] — the Table I hardware parameters.
//! * [`MatmulShape`] / [`DnnLayer`] — layer descriptions (a graph
//!   convolution appears as a matmul with the dense adjacency as weights,
//!   exactly as §II describes).
//! * [`mapper`] — a loop-tiling dataflow mapper producing compute cycles,
//!   DRAM traffic and PE utilisation for one layer.
//! * [`gcn_analysis`] — the end-to-end GCN-on-DNN-accelerator analysis
//!   that regenerates Table II and Figure 2.
//!
//! The same mapper provides the latency–throughput model for the DNA
//! module inside the GNN accelerator tile (`gnna-core`).
//!
//! # Example
//!
//! ```
//! use gnna_dnn::{mapper, EyerissConfig, MatmulShape};
//!
//! let cfg = EyerissConfig::default();
//! let m = mapper::map_matmul(&cfg, MatmulShape { m: 256, k: 128, n: 16 });
//! assert!(m.pe_utilization > 0.5);
//! assert_eq!(m.macs, 256 * 128 * 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod gcn_analysis;
mod layer;
pub mod mapper;

pub use config::EyerissConfig;
pub use gcn_analysis::{GcnAccelReport, GcnShape};
pub use layer::{DnnLayer, MatmulShape};
pub use mapper::Mapping;
