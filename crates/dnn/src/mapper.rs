//! An NN-Dataflow-style loop-tiling mapper for matmul layers on the
//! spatial PE array.
//!
//! The paper uses NN-Dataflow to obtain, for each layer, the inference
//! latency, required off-chip bandwidth and PE utilisation of the Table I
//! accelerator. This module performs the equivalent analysis from first
//! principles:
//!
//! * **Compute**: the output matrix is tiled over the PE array
//!   (output-stationary). Each "wave" of `num_pes` output elements takes
//!   `k` cycles (one MAC per PE per cycle); spatial under-filling of the
//!   last wave is the utilisation loss.
//! * **DRAM traffic**: a two-level tiling search chooses the output tile
//!   `(tm, tn)` that fits the global buffer and minimises traffic. The
//!   `A` operand is re-read once per column tile and `B` once per row
//!   tile; outputs are written once.
//!
//! The mapper is deliberately analytic (no cycle simulation): it matches
//! the role NN-Dataflow plays in the paper, and doubles as the DNA
//! latency–throughput model inside the accelerator tile.

use crate::{EyerissConfig, MatmulShape};

/// The result of mapping one matmul layer onto the PE array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mapping {
    /// The mapped shape.
    pub shape: MatmulShape,
    /// Total multiply–accumulates.
    pub macs: u64,
    /// Cycles spent computing (ignoring memory stalls).
    pub compute_cycles: u64,
    /// Fraction of PE-cycles doing real MACs, in `(0, 1]`.
    pub pe_utilization: f64,
    /// Bytes read from DRAM (A and B operands, with tiling reuse).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (the output).
    pub dram_write_bytes: u64,
    /// Chosen row tile of the output.
    pub tile_m: usize,
    /// Chosen column tile of the output.
    pub tile_n: usize,
}

impl Mapping {
    /// Total DRAM traffic (reads + writes).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Latency in seconds with unlimited memory bandwidth.
    pub fn latency_unlimited(&self, cfg: &EyerissConfig) -> f64 {
        cfg.cycles_to_seconds(self.compute_cycles)
    }

    /// Latency in seconds with `bandwidth_bytes_per_s` of off-chip
    /// bandwidth.
    ///
    /// Compute and the layer's DRAM streaming are modelled as serialised
    /// (double-buffering across *tiles* exists, but the huge adjacency
    /// operands of §II exceed the global buffer by orders of magnitude, so
    /// the array stalls on the stream; the serial model reproduces the
    /// paper's Table II within ~15 %).
    pub fn latency_at_bandwidth(&self, cfg: &EyerissConfig, bandwidth_bytes_per_s: f64) -> f64 {
        self.latency_unlimited(cfg) + self.dram_bytes() as f64 / bandwidth_bytes_per_s
    }
}

/// Maps a matmul onto the configured PE array.
///
/// Never returns a zero-cycle mapping: degenerate (empty) shapes map to a
/// single idle cycle.
pub fn map_matmul(cfg: &EyerissConfig, shape: MatmulShape) -> Mapping {
    let macs = shape.macs();
    if macs == 0 {
        return Mapping {
            shape,
            macs: 0,
            compute_cycles: 1,
            pe_utilization: 0.0,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            tile_m: 0,
            tile_n: 0,
        };
    }
    // Output-stationary compute model.
    let outputs = shape.m as u64 * shape.n as u64;
    let waves = outputs.div_ceil(cfg.num_pes as u64);
    let compute_cycles = waves * shape.k as u64;
    let pe_utilization = macs as f64 / (compute_cycles as f64 * cfg.num_pes as f64);

    // Tiling search for DRAM traffic: with the contraction dimension also
    // tiled (partial sums accumulate in the resident C tile), an output
    // tile (tm × tn) needs tm·tk + tk·tn + tm·tn words on chip; traffic is
    // independent of tk, so the constraint is evaluated at tk = 1:
    // A is re-read ceil(n/tn) times, B ceil(m/tm) times, C written once.
    let gb_words = cfg.global_buffer_words() as u64;
    let mut best: Option<(u64, usize, usize)> = None;
    let mut candidates_m: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, shape.m];
    candidates_m.retain(|&t| t >= 1 && t <= shape.m);
    candidates_m.dedup();
    let mut candidates_n: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, shape.n];
    candidates_n.retain(|&t| t >= 1 && t <= shape.n);
    candidates_n.dedup();
    for &tm in &candidates_m {
        for &tn in &candidates_n {
            let ws = tm as u64 + tn as u64 + tm as u64 * tn as u64;
            if ws > gb_words && !(tm == 1 && tn == 1) {
                continue;
            }
            let a_reads = shape.a_words() * (shape.n as u64).div_ceil(tn as u64);
            let b_reads = shape.b_words() * (shape.m as u64).div_ceil(tm as u64);
            let traffic = a_reads + b_reads;
            if best.is_none_or(|(t, _, _)| traffic < t) {
                best = Some((traffic, tm, tn));
            }
        }
    }
    let (read_words, tile_m, tile_n) = best.expect("candidate lists always include tm = tn = 1");
    Mapping {
        shape,
        macs,
        compute_cycles,
        pe_utilization,
        dram_read_bytes: read_words * cfg.word_bytes as u64,
        dram_write_bytes: shape.c_words() * cfg.word_bytes as u64,
        tile_m,
        tile_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EyerissConfig {
        EyerissConfig::default()
    }

    #[test]
    fn small_layer_full_reuse() {
        // Everything fits in the global buffer: each operand read once.
        let s = MatmulShape {
            m: 64,
            k: 32,
            n: 16,
        };
        let m = map_matmul(&cfg(), s);
        assert_eq!(m.dram_read_bytes, (s.a_words() + s.b_words()) * 4);
        assert_eq!(m.dram_write_bytes, s.c_words() * 4);
        assert_eq!(m.macs, s.macs());
    }

    #[test]
    fn compute_cycles_output_stationary() {
        let s = MatmulShape {
            m: 182,
            k: 100,
            n: 1,
        };
        let m = map_matmul(&cfg(), s);
        // Exactly one wave of 182 outputs, k = 100 cycles.
        assert_eq!(m.compute_cycles, 100);
        assert!((m.pe_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underfilled_wave_hurts_utilization() {
        let s = MatmulShape {
            m: 183,
            k: 10,
            n: 1,
        }; // 2 waves, second has 1 PE busy
        let m = map_matmul(&cfg(), s);
        assert_eq!(m.compute_cycles, 20);
        assert!(m.pe_utilization < 0.6);
    }

    #[test]
    fn huge_adjacency_layer_traffic_near_a_words() {
        // Pubmed-like adjacency matmul: A (19717²) cannot be tiled away;
        // with tn = n = 16 it is streamed exactly once.
        let s = MatmulShape {
            m: 19717,
            k: 19717,
            n: 16,
        };
        let m = map_matmul(&cfg(), s);
        assert_eq!(m.tile_n, 16);
        // A read once; B re-read per row tile.
        assert!(m.dram_read_bytes >= s.a_words() * 4);
        assert!(m.dram_read_bytes < 2 * s.a_words() * 4);
    }

    #[test]
    fn latency_bandwidth_monotone() {
        let s = MatmulShape {
            m: 2708,
            k: 2708,
            n: 16,
        };
        let m = map_matmul(&cfg(), s);
        let unlimited = m.latency_unlimited(&cfg());
        let at68 = m.latency_at_bandwidth(&cfg(), 68e9);
        let at544 = m.latency_at_bandwidth(&cfg(), 544e9);
        assert!(unlimited < at544);
        assert!(at544 < at68);
    }

    #[test]
    fn degenerate_shape_is_safe() {
        let m = map_matmul(&cfg(), MatmulShape { m: 0, k: 5, n: 5 });
        assert_eq!(m.macs, 0);
        assert_eq!(m.compute_cycles, 1);
        assert_eq!(m.dram_bytes(), 0);
    }

    #[test]
    fn utilization_bounded() {
        for &(m_, k_, n_) in &[
            (1usize, 1usize, 1usize),
            (7, 13, 3),
            (182, 50, 2),
            (1000, 1, 1000),
        ] {
            let m = map_matmul(
                &cfg(),
                MatmulShape {
                    m: m_,
                    k: k_,
                    n: n_,
                },
            );
            assert!(m.pe_utilization > 0.0 && m.pe_utilization <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn traffic_at_least_compulsory_for_unique_data() {
        // Reads can never be less than reading each operand once when the
        // tile search has room (small shapes).
        let s = MatmulShape {
            m: 100,
            k: 50,
            n: 20,
        };
        let m = map_matmul(&cfg(), s);
        assert!(m.dram_read_bytes >= (s.a_words() + s.b_words()) * 4);
    }
}
