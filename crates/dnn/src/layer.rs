use std::fmt;

/// The shape of a dense matrix multiplication `C[m×n] = A[m×k] · B[k×n]`.
///
/// Everything the DNN accelerator executes reduces to this shape: a
/// batched fully-connected layer is `batch × in × out`, and §II's
/// adjacency-as-convolution is `nodes × nodes × features`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulShape {
    /// Rows of the output (batch size / vertex count).
    pub m: usize,
    /// The contracted dimension.
    pub k: usize,
    /// Columns of the output.
    pub n: usize,
}

impl MatmulShape {
    /// A batched fully-connected layer.
    pub fn fully_connected(batch: usize, in_features: usize, out_features: usize) -> Self {
        MatmulShape {
            m: batch,
            k: in_features,
            n: out_features,
        }
    }

    /// A convolutional layer lowered to a matmul (im2col): §II describes
    /// GCN "as a series of convolutional and fully connected layers", and
    /// spatial arrays execute convolutions exactly this way.
    ///
    /// Output spatial size assumes unit stride and no padding
    /// (`out = in − kernel + 1`).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is larger than the input in either dimension.
    pub fn conv2d(
        batch: usize,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
    ) -> Self {
        assert!(
            k_h <= in_h && k_w <= in_w,
            "kernel {k_h}x{k_w} exceeds input {in_h}x{in_w}"
        );
        let out_h = in_h - k_h + 1;
        let out_w = in_w - k_w + 1;
        MatmulShape {
            m: batch * out_h * out_w,
            k: in_channels * k_h * k_w,
            n: out_channels,
        }
    }

    /// Total multiply–accumulate count.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Words of the `A` operand.
    pub fn a_words(&self) -> u64 {
        self.m as u64 * self.k as u64
    }

    /// Words of the `B` operand.
    pub fn b_words(&self) -> u64 {
        self.k as u64 * self.n as u64
    }

    /// Words of the output.
    pub fn c_words(&self) -> u64 {
        self.m as u64 * self.n as u64
    }
}

impl fmt::Display for MatmulShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.k, self.n)
    }
}

/// One layer of a model as the DNN accelerator sees it: a dense matmul,
/// optionally flagged as an adjacency operation with a known useful
/// (non-zero) entry count.
///
/// The useful-entry annotation implements Figure 2's accounting: "useful
/// bandwidth and utilization counts only non-zero entries in operations on
/// the adjacency matrix". For non-adjacency layers all work is useful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DnnLayer {
    /// A short name for reports (e.g. `"fc1"`, `"adj1"`).
    pub name: &'static str,
    /// The matmul shape.
    pub shape: MatmulShape,
    /// For adjacency layers: the number of non-zero entries of the `m × k`
    /// adjacency operand. `None` for ordinary dense layers.
    pub adjacency_nnz: Option<u64>,
}

impl DnnLayer {
    /// An ordinary dense layer (all entries useful).
    pub fn dense(name: &'static str, shape: MatmulShape) -> Self {
        DnnLayer {
            name,
            shape,
            adjacency_nnz: None,
        }
    }

    /// An adjacency layer whose `m × k` operand has `nnz` non-zeros.
    pub fn adjacency(name: &'static str, shape: MatmulShape, nnz: u64) -> Self {
        DnnLayer {
            name,
            shape,
            adjacency_nnz: Some(nnz),
        }
    }

    /// Total MACs of the layer.
    pub fn macs(&self) -> u64 {
        self.shape.macs()
    }

    /// Useful MACs: all of them for dense layers; `nnz × n` for adjacency
    /// layers (one MAC per non-zero per output feature).
    pub fn useful_macs(&self) -> u64 {
        match self.adjacency_nnz {
            None => self.macs(),
            Some(nnz) => nnz * self.shape.n as u64,
        }
    }

    /// Density of the adjacency operand (1.0 for dense layers).
    pub fn density(&self) -> f64 {
        match self.adjacency_nnz {
            None => 1.0,
            Some(nnz) => nnz as f64 / (self.shape.m as f64 * self.shape.k as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_shape() {
        let s = MatmulShape::fully_connected(100, 64, 16);
        assert_eq!(
            s,
            MatmulShape {
                m: 100,
                k: 64,
                n: 16
            }
        );
        assert_eq!(s.macs(), 100 * 64 * 16);
        assert_eq!(s.a_words(), 6400);
        assert_eq!(s.b_words(), 1024);
        assert_eq!(s.c_words(), 1600);
    }

    #[test]
    fn conv2d_im2col_dimensions() {
        // 1x1 convolution over an n-vector is exactly a fully-connected
        // layer — the §II adjacency-as-convolution equivalence.
        let fc = MatmulShape::fully_connected(64, 32, 16);
        let conv = MatmulShape::conv2d(64, 32, 16, 1, 1, 1, 1);
        assert_eq!(fc, conv);
        // A 3x3 conv on 8x8: 6x6 outputs per image.
        let c = MatmulShape::conv2d(2, 4, 8, 8, 8, 3, 3);
        assert_eq!(c.m, 2 * 6 * 6);
        assert_eq!(c.k, 4 * 9);
        assert_eq!(c.n, 8);
        assert_eq!(c.macs(), (2 * 36 * 36 * 8) as u64);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn conv2d_rejects_oversized_kernel() {
        let _ = MatmulShape::conv2d(1, 1, 1, 2, 2, 3, 3);
    }

    #[test]
    fn dense_layer_fully_useful() {
        let l = DnnLayer::dense("fc", MatmulShape { m: 4, k: 4, n: 4 });
        assert_eq!(l.useful_macs(), l.macs());
        assert_eq!(l.density(), 1.0);
    }

    #[test]
    fn adjacency_layer_useful_fraction() {
        let l = DnnLayer::adjacency(
            "adj",
            MatmulShape {
                m: 100,
                k: 100,
                n: 16,
            },
            500,
        );
        assert_eq!(l.macs(), 160_000);
        assert_eq!(l.useful_macs(), 500 * 16);
        assert!((l.density() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_shape() {
        assert_eq!(MatmulShape { m: 1, k: 2, n: 3 }.to_string(), "1x2x3");
    }
}
