//! The Section II analysis: GCN executed on the DNN spatial accelerator.
//!
//! §II of the paper describes the GCN algorithm "as a series of
//! convolutional and fully connected layers", with the graph-convolution
//! step modelled as a matrix multiplication with the *dense* adjacency
//! matrix. This module builds that layer list for a graph, maps every
//! layer with the [`crate::mapper`], and aggregates the quantities the
//! paper reports:
//!
//! * **Table II** — inference latency at unlimited and 68 GB/s bandwidth,
//!   2.4 GHz clock;
//! * **Figure 2** — mean off-chip bandwidth and PE utilisation, total and
//!   *useful* (counting only non-zero adjacency entries).

use crate::mapper::{map_matmul, Mapping};
use crate::{DnnLayer, EyerissConfig, MatmulShape};
use gnna_graph::CsrGraph;
use std::fmt;

/// The layer dimensions of the 2-layer reference GCN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcnShape {
    /// Vertex count of the input graph.
    pub nodes: usize,
    /// Input feature width.
    pub in_features: usize,
    /// Hidden width (16 in the reference implementation).
    pub hidden: usize,
    /// Output classes.
    pub out_features: usize,
    /// Non-zeros of the adjacency including self-loops.
    pub adjacency_nnz: u64,
}

impl GcnShape {
    /// Extracts the shape from a graph and feature widths, counting
    /// `A + I` non-zeros the way GCN uses the adjacency.
    pub fn from_graph(graph: &CsrGraph, in_features: usize, hidden: usize, out: usize) -> Self {
        let with_loops = graph.with_self_loops();
        GcnShape {
            nodes: graph.num_nodes(),
            in_features,
            hidden,
            out_features: out,
            adjacency_nnz: with_loops.num_stored_edges() as u64,
        }
    }

    /// The four dense layers §II maps GCN onto: projection then adjacency
    /// matmul, per GCN layer.
    pub fn layers(&self) -> Vec<DnnLayer> {
        vec![
            DnnLayer::dense(
                "fc1",
                MatmulShape::fully_connected(self.nodes, self.in_features, self.hidden),
            ),
            DnnLayer::adjacency(
                "adj1",
                MatmulShape {
                    m: self.nodes,
                    k: self.nodes,
                    n: self.hidden,
                },
                self.adjacency_nnz,
            ),
            DnnLayer::dense(
                "fc2",
                MatmulShape::fully_connected(self.nodes, self.hidden, self.out_features),
            ),
            DnnLayer::adjacency(
                "adj2",
                MatmulShape {
                    m: self.nodes,
                    k: self.nodes,
                    n: self.out_features,
                },
                self.adjacency_nnz,
            ),
        ]
    }
}

/// One analysed layer: the mapping plus useful-work accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerReport {
    /// The layer description.
    pub layer: DnnLayer,
    /// Its mapping on the PE array.
    pub mapping: Mapping,
    /// Useful MACs (non-zero-driven for adjacency layers).
    pub useful_macs: u64,
    /// Useful DRAM bytes (adjacency streams scaled by density).
    pub useful_dram_bytes: u64,
}

/// The aggregated Section II report for one GCN/graph pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnAccelReport {
    /// The accelerator configuration used.
    pub config: EyerissConfig,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
    /// Inference latency with unlimited bandwidth, seconds (Table II left).
    pub latency_unlimited_s: f64,
    /// Inference latency at the modelled bandwidth, seconds (Table II
    /// right).
    pub latency_bw_limited_s: f64,
    /// The bandwidth used for the limited case, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Mean demanded off-chip bandwidth, bytes/s (Fig 2, total bar).
    pub mean_bandwidth_total: f64,
    /// Mean *useful* off-chip bandwidth, bytes/s (Fig 2, useful bar).
    pub mean_bandwidth_useful: f64,
    /// PE utilisation counting all MACs (Fig 2, total).
    pub pe_utilization_total: f64,
    /// PE utilisation counting only useful MACs (Fig 2, useful).
    pub pe_utilization_useful: f64,
}

impl GcnAccelReport {
    /// Fraction of compute that is useful, in `[0, 1]` (the paper: "only
    /// 2 % of the compute is useful" for Pubmed).
    pub fn useful_compute_fraction(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.mapping.macs).sum();
        let useful: u64 = self.layers.iter().map(|l| l.useful_macs).sum();
        if total == 0 {
            0.0
        } else {
            useful as f64 / total as f64
        }
    }

    /// Fraction of DRAM traffic that is useful, in `[0, 1]`.
    pub fn useful_traffic_fraction(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.mapping.dram_bytes()).sum();
        let useful: u64 = self.layers.iter().map(|l| l.useful_dram_bytes).sum();
        if total == 0 {
            0.0
        } else {
            useful as f64 / total as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.mapping.dram_bytes()).sum()
    }
}

impl fmt::Display for GcnAccelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "latency: {:.3} ms unlimited, {:.3} ms @ {:.0} GB/s",
            self.latency_unlimited_s * 1e3,
            self.latency_bw_limited_s * 1e3,
            self.bandwidth_bytes_per_s / 1e9
        )?;
        writeln!(
            f,
            "bandwidth: {:.1} GB/s total, {:.2} GB/s useful; PE util: {:.1}% total, {:.2}% useful",
            self.mean_bandwidth_total / 1e9,
            self.mean_bandwidth_useful / 1e9,
            self.pe_utilization_total * 100.0,
            self.pe_utilization_useful * 100.0
        )
    }
}

/// Analyses a GCN shape on the DNN accelerator at the given off-chip
/// bandwidth (the paper uses 68 GB/s, ≈ 4 channels of DDR3-2400).
pub fn analyze_gcn(
    cfg: &EyerissConfig,
    shape: &GcnShape,
    bandwidth_bytes_per_s: f64,
) -> GcnAccelReport {
    let mut layers = Vec::new();
    let mut latency_unlimited = 0.0;
    let mut latency_limited = 0.0;
    for layer in shape.layers() {
        let mapping = map_matmul(cfg, layer.shape);
        let useful_macs = layer.useful_macs();
        // Useful traffic: the adjacency stream (the A operand re-reads)
        // scaled by density; B/C traffic is feature data and fully useful.
        let useful_dram_bytes = if layer.adjacency_nnz.is_some() {
            let passes_a = (layer.shape.n as u64).div_ceil(mapping.tile_n.max(1) as u64);
            let a_stream = layer.shape.a_words() * passes_a * cfg.word_bytes as u64;
            let a_stream = a_stream.min(mapping.dram_read_bytes);
            let feature_bytes = mapping.dram_bytes() - a_stream;
            (a_stream as f64 * layer.density()) as u64 + feature_bytes
        } else {
            mapping.dram_bytes()
        };
        latency_unlimited += mapping.latency_unlimited(cfg);
        latency_limited += mapping.latency_at_bandwidth(cfg, bandwidth_bytes_per_s);
        layers.push(LayerReport {
            layer,
            mapping,
            useful_macs,
            useful_dram_bytes,
        });
    }
    let total_bytes: u64 = layers.iter().map(|l| l.mapping.dram_bytes()).sum();
    let useful_bytes: u64 = layers.iter().map(|l| l.useful_dram_bytes).sum();
    let total_macs: u64 = layers.iter().map(|l| l.mapping.macs).sum();
    let useful_macs: u64 = layers.iter().map(|l| l.useful_macs).sum();
    let compute_cycles: u64 = layers.iter().map(|l| l.mapping.compute_cycles).sum();
    let pe_cycles = compute_cycles as f64 * cfg.num_pes as f64;
    GcnAccelReport {
        config: *cfg,
        layers,
        latency_unlimited_s: latency_unlimited,
        latency_bw_limited_s: latency_limited,
        bandwidth_bytes_per_s,
        mean_bandwidth_total: total_bytes as f64 / latency_limited,
        mean_bandwidth_useful: useful_bytes as f64 / latency_limited,
        pe_utilization_total: total_macs as f64 / pe_cycles,
        pe_utilization_useful: useful_macs as f64 / pe_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Cora-statistics shape without generating the graph.
    fn cora_shape() -> GcnShape {
        GcnShape {
            nodes: 2708,
            in_features: 1433,
            hidden: 16,
            out_features: 7,
            adjacency_nnz: 2 * 5429 + 2708,
        }
    }

    fn pubmed_shape() -> GcnShape {
        GcnShape {
            nodes: 19717,
            in_features: 500,
            hidden: 16,
            out_features: 3,
            adjacency_nnz: 2 * 44338 + 19717,
        }
    }

    #[test]
    fn layer_list_structure() {
        let layers = cora_shape().layers();
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0].name, "fc1");
        assert!(layers[1].adjacency_nnz.is_some());
        assert_eq!(layers[1].shape.m, 2708);
        assert_eq!(layers[1].shape.k, 2708);
    }

    #[test]
    fn cora_latency_in_table_ii_regime() {
        // Paper Table II: 0.791 ms unlimited, 1.597 ms at 68 GB/s. Our
        // analytic mapper should land in the same regime (same order,
        // bandwidth-limited roughly 2x the unlimited number).
        let r = analyze_gcn(&EyerissConfig::default(), &cora_shape(), 68e9);
        let unlimited_ms = r.latency_unlimited_s * 1e3;
        let limited_ms = r.latency_bw_limited_s * 1e3;
        assert!(
            (0.2..=2.5).contains(&unlimited_ms),
            "unlimited {unlimited_ms} ms"
        );
        assert!((0.8..=4.0).contains(&limited_ms), "limited {limited_ms} ms");
        assert!(limited_ms > unlimited_ms);
    }

    #[test]
    fn pubmed_latency_in_table_ii_regime() {
        // Paper: 22.129 ms unlimited, 64.636 ms at 68 GB/s.
        let r = analyze_gcn(&EyerissConfig::default(), &pubmed_shape(), 68e9);
        let unlimited_ms = r.latency_unlimited_s * 1e3;
        let limited_ms = r.latency_bw_limited_s * 1e3;
        assert!(
            (10.0..=35.0).contains(&unlimited_ms),
            "unlimited {unlimited_ms} ms"
        );
        assert!(
            (40.0..=90.0).contains(&limited_ms),
            "limited {limited_ms} ms"
        );
    }

    #[test]
    fn pubmed_useful_compute_about_two_percent() {
        // The paper: "only 1% of the memory requests and 2% of the compute
        // are useful" for Pubmed.
        let r = analyze_gcn(&EyerissConfig::default(), &pubmed_shape(), 68e9);
        let compute = r.useful_compute_fraction();
        let traffic = r.useful_traffic_fraction();
        assert!(
            (0.005..=0.06).contains(&compute),
            "compute fraction {compute}"
        );
        assert!(
            (0.002..=0.05).contains(&traffic),
            "traffic fraction {traffic}"
        );
    }

    #[test]
    fn useful_never_exceeds_total() {
        for shape in [cora_shape(), pubmed_shape()] {
            let r = analyze_gcn(&EyerissConfig::default(), &shape, 68e9);
            assert!(r.mean_bandwidth_useful <= r.mean_bandwidth_total);
            assert!(r.pe_utilization_useful <= r.pe_utilization_total);
            for l in &r.layers {
                assert!(l.useful_macs <= l.mapping.macs);
                assert!(l.useful_dram_bytes <= l.mapping.dram_bytes());
            }
        }
    }

    #[test]
    fn denser_graph_has_higher_useful_fraction() {
        let sparse = pubmed_shape();
        let mut dense = pubmed_shape();
        dense.adjacency_nnz *= 10;
        let cfg = EyerissConfig::default();
        let rs = analyze_gcn(&cfg, &sparse, 68e9);
        let rd = analyze_gcn(&cfg, &dense, 68e9);
        assert!(rd.useful_compute_fraction() > rs.useful_compute_fraction());
    }

    #[test]
    fn from_graph_counts_self_loops() {
        let g = gnna_graph::CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let s = GcnShape::from_graph(&g, 8, 4, 2);
        assert_eq!(s.adjacency_nnz, 4 + 3);
        assert_eq!(s.nodes, 3);
    }

    #[test]
    fn display_contains_latency() {
        let r = analyze_gcn(&EyerissConfig::default(), &cora_shape(), 68e9);
        assert!(r.to_string().contains("latency"));
    }
}
