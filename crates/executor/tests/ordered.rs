//! Executor contract tests: in-order emission for every thread budget,
//! work-stealing completeness, and panic propagation as a structured
//! error instead of a process abort.

use gnna_executor::{Executor, ExecutorError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A worker whose per-index runtime varies wildly, so with several
/// threads the finish order is all but guaranteed to differ from the
/// index order — exactly what the reorder stage must hide.
fn jittery(index: usize) -> Result<String, String> {
    let delay_us = (index * 7919 % 13) * 200;
    std::thread::sleep(Duration::from_micros(delay_us as u64));
    Ok(format!("record {index} (slept {delay_us}us)"))
}

#[test]
fn emission_is_in_order_for_threads_1_through_8() {
    const TOTAL: usize = 40;
    let reference: Vec<String> = (0..TOTAL).map(|i| jittery(i).unwrap()).collect();
    for threads in 1..=8 {
        let ex = Executor::new(threads);
        let mut seen = Vec::new();
        let n = ex
            .run_ordered(TOTAL, 0, jittery, |i, line| {
                seen.push((i, line));
                Ok(())
            })
            .unwrap();
        assert_eq!(n, TOTAL, "threads={threads}");
        let indices: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        assert_eq!(
            indices,
            (0..TOTAL).collect::<Vec<_>>(),
            "out-of-order emission at threads={threads}"
        );
        let lines: Vec<String> = seen.into_iter().map(|(_, l)| l).collect();
        assert_eq!(
            lines, reference,
            "threads={threads} changed the emitted bytes"
        );
    }
}

#[test]
fn start_offset_resumes_mid_range() {
    let ex = Executor::new(3);
    let mut seen = Vec::new();
    let n = ex
        .run_ordered(
            10,
            6,
            |i| Ok::<_, String>(i * i),
            |i, v| {
                seen.push((i, v));
                Ok(())
            },
        )
        .unwrap();
    assert_eq!(n, 4);
    assert_eq!(seen, vec![(6, 36), (7, 49), (8, 64), (9, 81)]);
}

#[test]
fn worker_error_is_structured_and_ordered() {
    for threads in [1, 4] {
        let ex = Executor::new(threads);
        let mut sunk = Vec::new();
        let err = ex
            .run_ordered(
                8,
                0,
                |i| {
                    if i == 5 {
                        Err(format!("cell {i} exploded"))
                    } else {
                        jittery(i)
                    }
                },
                |i, _| {
                    sunk.push(i);
                    Ok(())
                },
            )
            .unwrap_err();
        assert_eq!(err.index(), 5, "threads={threads}");
        assert_eq!(err.message(), "cell 5 exploded");
        assert!(matches!(err, ExecutorError::Worker { .. }));
        // Everything before the failed index was emitted, in order.
        assert_eq!(sunk, vec![0, 1, 2, 3, 4], "threads={threads}");
    }
}

#[test]
fn worker_panic_becomes_a_structured_error() {
    for threads in [1, 2, 6] {
        let ex = Executor::new(threads);
        let mut sunk = Vec::new();
        let err = ex
            .run_ordered(
                6,
                0,
                |i| {
                    if i == 3 {
                        panic!("boom at {i}");
                    }
                    jittery(i)
                },
                |i, _| {
                    sunk.push(i);
                    Ok(())
                },
            )
            .unwrap_err();
        match &err {
            ExecutorError::Panic { index, message } => {
                assert_eq!(*index, 3, "threads={threads}");
                assert!(message.contains("boom at 3"), "payload lost: {message}");
            }
            other => panic!("expected Panic, got {other:?} (threads={threads})"),
        }
        assert_eq!(sunk, vec![0, 1, 2], "threads={threads}");
        assert!(err.to_string().contains("job 3 panicked"));
    }
}

#[test]
fn every_index_is_computed_exactly_once() {
    let ex = Executor::new(8);
    let calls = AtomicUsize::new(0);
    let v = ex
        .map_ordered(100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
    assert_eq!(v, (0..100).collect::<Vec<_>>());
    // Work stealing over-draws the counter but never re-runs an index;
    // the sink saw each exactly once and the call count matches.
    assert_eq!(calls.load(Ordering::Relaxed), 100);
}

#[test]
fn concurrent_calls_share_one_budget_and_stay_ordered() {
    let ex = Executor::new(4);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let ex = &ex;
            scope.spawn(move || {
                let v = ex.map_ordered(20, jittery).unwrap();
                let reference: Vec<String> = (0..20).map(|i| jittery(i).unwrap()).collect();
                assert_eq!(v, reference);
            });
        }
    });
}
