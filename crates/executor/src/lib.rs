//! Std-only work-stealing executor with deterministic in-order emission.
//!
//! Lifted out of the fault-campaign runner (`gnna-bench`) so every
//! multi-worker consumer in the workspace — campaign sweeps, the
//! `gnna-serve` inference daemon, future autotuner grids — rides one
//! scheduling implementation with one determinism contract:
//!
//! * **Work stealing**: workers pull the next job index from a shared
//!   atomic counter. Load balancing is dynamic (long jobs don't block
//!   short ones behind a static partition) and allocation-free.
//! * **In-order emission**: finished results are re-ordered and handed
//!   to the caller's sink strictly in index order, whatever order the
//!   workers finish in. The sink observes *byte-identical* sequences
//!   for every thread count — the property the campaign runner's
//!   `--threads N` golden rests on.
//! * **Structured failure**: a worker returning `Err` or panicking
//!   surfaces as an [`ExecutorError`] carrying the job index and
//!   message; emission stops at the first failed index so everything
//!   already sunk remains valid (e.g. resumable campaign prefixes).
//! * **Shared budget**: concurrent [`Executor::run_ordered`] calls on
//!   one executor share its thread budget instead of multiplying it;
//!   late callers fall back to inline execution when the pool is
//!   saturated. The `gnna-serve` daemon leans on this: several
//!   accelerator-instance workers submit batches to one executor sized
//!   for the machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// How one job failed inside [`Executor::run_ordered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// The worker closure returned `Err` for this index.
    Worker {
        /// Job index that failed.
        index: usize,
        /// The worker's error message.
        message: String,
    },
    /// The worker closure panicked for this index. The panic is caught
    /// and converted — a campaign or serving batch never aborts the
    /// process because one cell misbehaved.
    Panic {
        /// Job index whose worker panicked.
        index: usize,
        /// Panic payload rendered to text (`&str`/`String` payloads are
        /// preserved verbatim).
        message: String,
    },
    /// The caller's sink returned `Err` while consuming this index.
    Sink {
        /// Job index whose emission failed.
        index: usize,
        /// The sink's error message.
        message: String,
    },
}

impl ExecutorError {
    /// The job index the error is attached to.
    pub fn index(&self) -> usize {
        match self {
            ExecutorError::Worker { index, .. }
            | ExecutorError::Panic { index, .. }
            | ExecutorError::Sink { index, .. } => *index,
        }
    }

    /// The failure message (worker error, panic payload, or sink error).
    pub fn message(&self) -> &str {
        match self {
            ExecutorError::Worker { message, .. }
            | ExecutorError::Panic { message, .. }
            | ExecutorError::Sink { message, .. } => message,
        }
    }
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::Worker { index, message } => {
                write!(f, "job {index} failed: {message}")
            }
            ExecutorError::Panic { index, message } => {
                write!(f, "job {index} panicked: {message}")
            }
            ExecutorError::Sink { index, message } => {
                write!(f, "sink failed at job {index}: {message}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Renders a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Runs one job with panic containment.
fn run_one<T>(
    worker: &(impl Fn(usize) -> Result<T, String> + Sync),
    index: usize,
) -> Result<T, ExecutorError> {
    match catch_unwind(AssertUnwindSafe(|| worker(index))) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(message)) => Err(ExecutorError::Worker { index, message }),
        Err(payload) => Err(ExecutorError::Panic {
            index,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// A sized pool of worker threads with a shared budget.
///
/// The executor itself holds no threads between calls — each
/// [`run_ordered`](Executor::run_ordered) spawns scoped workers so
/// borrowed job data needs no `'static` bound and no `unsafe`. What *is*
/// shared is the budget: concurrent calls split `threads()` between
/// them, so an executor sized for the machine never oversubscribes it.
#[derive(Debug)]
pub struct Executor {
    threads: usize,
    in_flight: AtomicUsize,
}

impl Executor {
    /// An executor that runs at most `threads` workers at once
    /// (`0` is clamped to `1`).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Claims up to `want` worker slots from the shared budget; returns
    /// how many were granted (possibly 0 when saturated).
    fn claim(&self, want: usize) -> usize {
        let mut used = self.in_flight.load(Ordering::Relaxed);
        loop {
            let grant = self.threads.saturating_sub(used).min(want);
            if grant == 0 {
                return 0;
            }
            match self.in_flight.compare_exchange_weak(
                used,
                used + grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return grant,
                Err(now) => used = now,
            }
        }
    }

    fn release(&self, n: usize) {
        self.in_flight.fetch_sub(n, Ordering::Relaxed);
    }

    /// Runs `worker` over the index range `start..total` and feeds each
    /// result to `sink` **strictly in index order**. Returns the number
    /// of results sunk.
    ///
    /// Jobs are distributed by work stealing, so any worker may compute
    /// any index — `worker` must be a pure function of the index for
    /// the output to be deterministic (every caller in this workspace
    /// holds to that). The sink sees the same sequence for every thread
    /// budget, including 1.
    ///
    /// # Errors
    ///
    /// The first failing index (worker error, worker panic, or sink
    /// error) is returned after every earlier index has been sunk;
    /// later indices are abandoned.
    pub fn run_ordered<T: Send>(
        &self,
        total: usize,
        start: usize,
        worker: impl Fn(usize) -> Result<T, String> + Sync,
        mut sink: impl FnMut(usize, T) -> Result<(), String>,
    ) -> Result<usize, ExecutorError> {
        if start >= total {
            return Ok(0);
        }
        let pending = total - start;
        // The caller's thread reorders and sinks; worker slots come from
        // the shared budget. A single-thread budget or a saturated pool
        // degrades to inline execution on the caller's thread.
        let extra = if self.threads == 1 {
            0
        } else {
            self.claim(self.threads.min(pending))
        };
        if extra == 0 {
            for index in start..total {
                let v = run_one(&worker, index)?;
                sink(index, v).map_err(|message| ExecutorError::Sink { index, message })?;
            }
            return Ok(pending);
        }

        let next = AtomicUsize::new(start);
        let stop = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<(usize, Result<T, ExecutorError>)>();
        let mut sunk = 0usize;
        let mut result: Result<usize, ExecutorError> = Ok(pending);
        std::thread::scope(|scope| {
            // `extra` background workers pull from the shared counter;
            // the caller's thread reorders and sinks.
            for _ in 0..extra {
                let tx = tx.clone();
                let next = &next;
                let stop = &stop;
                let worker = &worker;
                scope.spawn(move || loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        return;
                    }
                    if tx.send((index, run_one(worker, index))).is_err() {
                        return;
                    }
                });
            }
            drop(tx);
            // Reorder: emit strictly in index order.
            let mut held: BTreeMap<usize, Result<T, ExecutorError>> = BTreeMap::new();
            let mut emit_next = start;
            'recv: for (index, outcome) in &rx {
                held.insert(index, outcome);
                while let Some(outcome) = held.remove(&emit_next) {
                    match outcome {
                        Ok(v) => {
                            if let Err(message) = sink(emit_next, v) {
                                result = Err(ExecutorError::Sink {
                                    index: emit_next,
                                    message,
                                });
                                stop.store(true, Ordering::Relaxed);
                                break 'recv;
                            }
                            sunk += 1;
                        }
                        Err(e) => {
                            result = Err(e);
                            stop.store(true, Ordering::Relaxed);
                            break 'recv;
                        }
                    }
                    emit_next += 1;
                }
            }
            // Drain so workers finish sending and exit; the scope joins
            // them on the way out either way.
            for _ in rx {}
        });
        self.release(extra);
        // On success every pending index was sunk exactly once.
        result.map(|_| sunk)
    }

    /// [`run_ordered`](Executor::run_ordered) collecting results into a
    /// `Vec` (index order).
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecutorError`].
    pub fn map_ordered<T: Send>(
        &self,
        total: usize,
        worker: impl Fn(usize) -> Result<T, String> + Sync,
    ) -> Result<Vec<T>, ExecutorError> {
        let mut out = Vec::with_capacity(total);
        self.run_ordered(total, 0, worker, |_, v| {
            out.push(v);
            Ok(())
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_exhausted_ranges_are_noops() {
        let ex = Executor::new(4);
        let n = ex
            .run_ordered(0, 0, |_| Ok::<_, String>(0u32), |_, _| Ok(()))
            .unwrap();
        assert_eq!(n, 0);
        let n = ex
            .run_ordered(3, 3, |_| Ok::<_, String>(0u32), |_, _| Ok(()))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let ex = Executor::new(0);
        assert_eq!(ex.threads(), 1);
        let v = ex.map_ordered(3, |i| Ok(i * 2)).unwrap();
        assert_eq!(v, vec![0, 2, 4]);
    }

    #[test]
    fn sink_error_is_structured() {
        let ex = Executor::new(2);
        let err = ex
            .run_ordered(4, 0, Ok::<_, String>, |i, _| {
                if i == 2 {
                    Err("disk full".into())
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            ExecutorError::Sink {
                index: 2,
                message: "disk full".into()
            }
        );
    }

    #[test]
    fn budget_is_shared_between_nested_calls() {
        // A saturated executor still completes nested calls inline.
        let ex = Executor::new(2);
        let outer = ex
            .map_ordered(3, |i| {
                let inner = ex
                    .map_ordered(2, |j| Ok(10 * i + j))
                    .map_err(|e| e.to_string())?;
                Ok(inner.iter().sum::<usize>())
            })
            .unwrap();
        assert_eq!(outer, vec![1, 21, 41]);
    }
}
