//! # gnna — a GNN accelerator reproduction
//!
//! Umbrella crate for the Rust reproduction of *Hardware Acceleration of
//! Graph Neural Networks* (Auten, Tomei, Kumar — DAC 2020). It re-exports
//! every sub-crate so downstream users can depend on a single crate:
//!
//! * [`graph`] — CSR graphs and the five benchmark datasets (Table V).
//! * [`tensor`] — dense/sparse `f32` linear algebra.
//! * [`models`] — functional GCN / GAT / MPNN / PGNN implementations.
//! * [`dnn`] — the Eyeriss-like spatial DNN accelerator model and dataflow
//!   mapper used both for the DNA and for the Section II baseline analysis.
//! * [`noc`] — the Booksim-style cycle-level mesh network (Table IV).
//! * [`mem`] — the bandwidth–latency memory-controller model.
//! * [`core`] — the GNN accelerator itself: tiles (GPE, DNQ, DNA, AGG),
//!   runtime (Algorithm 1), vertex programs and the full-system simulator.
//! * [`baselines`] — measured CPU/GPU latencies (Table VII) and analytic
//!   roofline models of the baseline systems (Table III).
//!
//! # Quickstart
//!
//! ```
//! use gnna::graph::datasets;
//! use gnna::models::Gcn;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A scaled-down Cora-like dataset and a functional GCN forward pass.
//! let dataset = datasets::cora_scaled(100, 32, 7, 42)?;
//! let instance = &dataset.instances[0];
//! let gcn = Gcn::for_dataset(instance.x.cols(), 16, dataset.output_features, 1)?;
//! let out = gcn.forward(&instance.graph, &instance.x)?;
//! assert_eq!(out.shape(), (instance.graph.num_nodes(), 7));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end simulated-accelerator run.

#![forbid(unsafe_code)]

pub use gnna_baselines as baselines;
pub use gnna_core as core;
pub use gnna_dnn as dnn;
pub use gnna_graph as graph;
pub use gnna_mem as mem;
pub use gnna_models as models;
pub use gnna_noc as noc;
pub use gnna_tensor as tensor;
