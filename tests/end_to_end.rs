//! Cross-crate integration tests: every benchmark model, compiled and
//! simulated on the cycle-level accelerator, must reproduce its
//! functional reference model — across configurations and clocks.

use gnna::core::config::AcceleratorConfig;
use gnna::core::layers::{compile_gat, compile_gcn, compile_mpnn, compile_pgnn};
use gnna::core::system::System;
use gnna::graph::datasets;
use gnna::models::{Gat, Gcn, GcnNorm, Mpnn, Pgnn};
use gnna::tensor::Matrix;

fn max_row_diff(a: &Matrix, b: &Matrix) -> f32 {
    a.max_abs_diff(b).expect("same shape")
}

#[test]
fn gcn_matches_on_all_three_configurations() {
    let d = datasets::cora_scaled(60, 24, 5, 3).unwrap();
    let inst = &d.instances[0];
    let gcn = Gcn::for_dataset(24, 8, 5, 9)
        .unwrap()
        .with_norm(GcnNorm::Mean);
    let reference = gcn.forward(&inst.graph, &inst.x).unwrap();
    for cfg in [
        AcceleratorConfig::cpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_flops(),
    ] {
        let mut sys =
            System::new(&cfg, std::slice::from_ref(inst), compile_gcn(&gcn).unwrap()).unwrap();
        sys.run().unwrap();
        let diff = max_row_diff(&sys.output_matrix(0).unwrap(), &reference);
        assert!(diff < 1e-3, "{}: diff {diff}", cfg.name);
    }
}

#[test]
fn results_are_clock_invariant() {
    // The core clock changes timing, never values.
    let d = datasets::cora_scaled(40, 16, 4, 5).unwrap();
    let inst = &d.instances[0];
    let gcn = Gcn::for_dataset(16, 8, 4, 2)
        .unwrap()
        .with_norm(GcnNorm::Mean);
    let mut outputs = Vec::new();
    for clock in [0.6e9, 1.2e9, 2.4e9] {
        let cfg = AcceleratorConfig::cpu_iso_bandwidth().with_core_clock(clock);
        let mut sys =
            System::new(&cfg, std::slice::from_ref(inst), compile_gcn(&gcn).unwrap()).unwrap();
        sys.run().unwrap();
        outputs.push(sys.output_matrix(0).unwrap());
    }
    assert!(max_row_diff(&outputs[0], &outputs[1]) < 1e-5);
    assert!(max_row_diff(&outputs[1], &outputs[2]) < 1e-5);
}

#[test]
fn gat_matches_functional_model_multi_tile() {
    let d = datasets::cora_scaled(48, 12, 3, 8).unwrap();
    let inst = &d.instances[0];
    let gat = Gat::for_dataset(12, 3, 4).unwrap();
    let cfg = AcceleratorConfig::gpu_iso_bandwidth();
    let mut sys =
        System::new(&cfg, std::slice::from_ref(inst), compile_gat(&gat).unwrap()).unwrap();
    sys.run().unwrap();
    let diff = max_row_diff(
        &sys.output_matrix(0).unwrap(),
        &gat.forward(&inst.graph, &inst.x).unwrap(),
    );
    assert!(diff < 1e-3, "diff {diff}");
}

#[test]
fn mpnn_edge_network_matches_functional_model() {
    let d = datasets::qm9_scaled(6, 4).unwrap();
    let mpnn = Mpnn::for_dataset_gilmer(13, 5, 8, 6, 2, 5).unwrap();
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    let mut sys = System::new(&cfg, &d.instances, compile_mpnn(&mpnn).unwrap()).unwrap();
    sys.run().unwrap();
    let reference = mpnn.forward_dataset(&d.instances).unwrap();
    for g in 0..d.instances.len() {
        let sim = sys.output_matrix(g).unwrap();
        let diff: f32 = sim
            .row(0)
            .iter()
            .zip(reference.row(g))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-3, "graph {g}: diff {diff}");
    }
}

#[test]
fn mpnn_graphs_split_across_tiles() {
    // Multi-tile MPNN exercises the cross-tile readout mailbox.
    let d = datasets::qm9_scaled(10, 6).unwrap();
    let mpnn = Mpnn::for_dataset(13, 5, 8, 4, 1, 2).unwrap();
    let cfg = AcceleratorConfig::gpu_iso_bandwidth();
    let mut sys = System::new(&cfg, &d.instances, compile_mpnn(&mpnn).unwrap()).unwrap();
    sys.run().unwrap();
    let reference = mpnn.forward_dataset(&d.instances).unwrap();
    for g in 0..d.instances.len() {
        let sim = sys.output_matrix(g).unwrap();
        let diff: f32 = sim
            .row(0)
            .iter()
            .zip(reference.row(g))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-3, "graph {g}: diff {diff}");
    }
}

#[test]
fn deep_pgnn_matches_functional_model() {
    let d = datasets::dblp_scaled(30, 3).unwrap();
    let inst = &d.instances[0];
    let pgnn = Pgnn::deep(&[0, 1, 2], 1, 6, 3, 3, 4).unwrap();
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    let mut sys = System::new(
        &cfg,
        std::slice::from_ref(inst),
        compile_pgnn(&pgnn).unwrap(),
    )
    .unwrap();
    sys.run().unwrap();
    let reference = pgnn.forward(&inst.graph, &inst.x).unwrap();
    let diff = max_row_diff(&sys.output_matrix(0).unwrap(), &reference);
    // Deep gathers over a dense graph reach large magnitudes; compare
    // relative to the output scale (f32 summation-order noise).
    let scale = reference
        .as_slice()
        .iter()
        .fold(1.0f32, |m, v| m.max(v.abs()));
    assert!(diff / scale < 1e-4, "relative diff {}", diff / scale);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let d = datasets::cora_scaled(32, 8, 3, 1).unwrap();
        let gcn = Gcn::for_dataset(8, 4, 3, 1)
            .unwrap()
            .with_norm(GcnNorm::Mean);
        let cfg = AcceleratorConfig::cpu_iso_bandwidth();
        let mut sys =
            System::new(&cfg, &[d.instances[0].clone()], compile_gcn(&gcn).unwrap()).unwrap();
        let r = sys.run().unwrap();
        (
            r.total_cycles,
            r.dram_bytes,
            r.noc_flit_hops,
            sys.full_output(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "cycle counts differ");
    assert_eq!(a.1, b.1, "traffic differs");
    assert_eq!(a.2, b.2, "hops differ");
    assert_eq!(a.3, b.3, "outputs differ");
}

#[test]
fn memory_bound_workload_is_clock_insensitive() {
    // Wide features, tiny compute: halving the core clock should barely
    // change latency (the paper's §VI-B argument for GCN).
    let d = datasets::cora_scaled(300, 512, 3, 2).unwrap();
    let inst = &d.instances[0];
    let gcn = Gcn::for_dataset(512, 8, 3, 1)
        .unwrap()
        .with_norm(GcnNorm::Mean);
    let run = |clock: f64| {
        let cfg = AcceleratorConfig::cpu_iso_bandwidth().with_core_clock(clock);
        let mut sys =
            System::new(&cfg, std::slice::from_ref(inst), compile_gcn(&gcn).unwrap()).unwrap();
        sys.run().unwrap().latency_s()
    };
    let fast = run(2.4e9);
    let half = run(1.2e9);
    assert!(
        half / fast < 1.5,
        "memory-bound workload slowed {}x when halving the clock",
        half / fast
    );
}

#[test]
fn speedup_report_fields_are_consistent() {
    let d = datasets::cora_scaled(64, 32, 4, 6).unwrap();
    let inst = &d.instances[0];
    let gcn = Gcn::for_dataset(32, 8, 4, 1)
        .unwrap()
        .with_norm(GcnNorm::Mean);
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();
    let mut sys =
        System::new(&cfg, std::slice::from_ref(inst), compile_gcn(&gcn).unwrap()).unwrap();
    let r = sys.run().unwrap();
    // Basic accounting sanity.
    assert!(r.useful_mem_bytes <= r.dram_bytes);
    assert!(r.mean_bandwidth() <= r.peak_mem_bandwidth * 1.01);
    assert!(r.dna_utilization() <= 1.0);
    assert!(r.gpe_utilization() <= 1.0);
    assert!(r.config_cycles < r.total_cycles);
    assert_eq!(r.num_tiles, 1);
    // One DNA entry per vertex per projection layer.
    assert_eq!(r.dna_entries, 2 * 64);
    // One aggregation per vertex per aggregate layer.
    assert!(r.agg_completed >= 2 * 64);
}
