//! Property-based integration tests: random small workloads through the
//! full cycle-level simulator must always terminate, conserve traffic,
//! and reproduce the functional models.

use gnna::core::config::AcceleratorConfig;
use gnna::core::layers::{compile_gcn, compile_pgnn};
use gnna::core::system::System;
use gnna::graph::{generate, CsrGraph, GraphInstance};
use gnna::models::{Gcn, GcnNorm, Pgnn};
use gnna::tensor::Matrix;
use proptest::prelude::*;

/// A random small connected graph plus features.
fn instance_strategy() -> impl Strategy<Value = (GraphInstance, u64)> {
    (8usize..40, 1usize..3, 4usize..24, any::<u64>()).prop_map(|(n, density, f, seed)| {
        let edges = (density * n).min(n * (n - 1) / 2).max(n - 1);
        let graph = generate::power_law_graph(n, edges, seed).expect("generated");
        let x = generate::random_features(n, f, seed ^ 0xabc);
        (
            GraphInstance {
                graph,
                x,
                edge_features: None,
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The accelerator reproduces the functional GCN on arbitrary small
    /// graphs, and the run always terminates with a balanced ledger.
    #[test]
    fn random_gcn_simulations_match_functional((inst, seed) in instance_strategy()) {
        let f = inst.x.cols();
        let hidden = 1 + (seed % 8) as usize;
        let out = 2 + (seed % 4) as usize;
        let gcn = Gcn::for_dataset(f, hidden, out, seed)
            .expect("model")
            .with_norm(GcnNorm::Mean);
        let cfg = AcceleratorConfig::cpu_iso_bandwidth();
        let mut sys = System::new(&cfg, std::slice::from_ref(&inst), compile_gcn(&gcn).expect("compile"))
            .expect("system");
        let report = sys.run().expect("terminates");
        let reference = gcn.forward(&inst.graph, &inst.x).expect("forward");
        let diff = sys
            .output_matrix(0)
            .expect("output")
            .max_abs_diff(&reference)
            .expect("shape");
        prop_assert!(diff < 1e-3, "diff {diff}");
        prop_assert!(report.useful_mem_bytes <= report.dram_bytes);
        prop_assert!(report.total_cycles > 0);
    }

    /// PGNN with random powers: multi-hop expansion terminates and
    /// matches the functional model.
    #[test]
    fn random_pgnn_simulations_match_functional(
        (inst, seed) in instance_strategy(),
        k in 2usize..4,
    ) {
        let graph = inst.graph.clone();
        let x = Matrix::from_fn(graph.num_nodes(), 1, |v, _| graph.degree(v) as f32);
        let inst = GraphInstance { graph, x, edge_features: None };
        let pgnn = Pgnn::with_powers(&[0, 1, k], 1, 4, 2, seed).expect("model");
        let cfg = AcceleratorConfig::cpu_iso_bandwidth();
        let mut sys = System::new(&cfg, std::slice::from_ref(&inst), compile_pgnn(&pgnn).expect("compile"))
            .expect("system");
        sys.run().expect("terminates");
        let reference = pgnn.forward(&inst.graph, &inst.x).expect("forward");
        let diff = sys
            .output_matrix(0)
            .expect("output")
            .max_abs_diff(&reference)
            .expect("shape");
        // Gathers over dense k-hop sets reach large magnitudes; compare
        // relative to the output scale (f32 summation-order noise).
        let scale = reference.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
        prop_assert!(diff / scale < 1e-4, "relative diff {}", diff / scale);
    }

    /// Graph generators always hit their exact targets (the Table V
    /// contract) for arbitrary feasible sizes.
    #[test]
    fn generators_hit_exact_targets(n in 4usize..200, extra in 0usize..100, seed in any::<u64>()) {
        let max_edges = n * (n - 1) / 2;
        let edges = (n - 1 + extra).min(max_edges);
        let g = generate::power_law_graph(n, edges, seed).expect("generated");
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_undirected_edges(), edges);
        prop_assert!(g.is_symmetric());
    }

    /// Boolean adjacency powers agree with dense matrix powers on random
    /// graphs.
    #[test]
    fn power_structure_matches_dense_power(n in 3usize..16, seed in any::<u64>(), k in 0usize..5) {
        let edges = (2 * n).min(n * (n - 1) / 2).max(n - 1);
        let g = generate::power_law_graph(n, edges, seed).expect("generated");
        let p = g.power_structure(k);
        // Dense boolean power.
        let a = g.adjacency_matrix().to_dense();
        let mut acc = Matrix::identity(n);
        for _ in 0..k {
            acc = acc.matmul(&a).expect("square");
        }
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(p.has_edge(u, v), acc.get(u, v) > 0.0, "({}, {})", u, v);
            }
        }
    }
}

/// Non-proptest cross-crate check: a hand-built graph runs identically
/// when presented as one instance or as the union of disconnected parts.
#[test]
fn union_graph_equivalent_to_monolithic() {
    let g1 = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
    let g2 = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let x1 = generate::random_features(4, 6, 1);
    let x2 = generate::random_features(3, 6, 2);
    let gcn = Gcn::for_dataset(6, 4, 2, 3)
        .unwrap()
        .with_norm(GcnNorm::Mean);
    let cfg = AcceleratorConfig::cpu_iso_bandwidth();

    // Two instances in one run.
    let insts = vec![
        GraphInstance {
            graph: g1.clone(),
            x: x1.clone(),
            edge_features: None,
        },
        GraphInstance {
            graph: g2.clone(),
            x: x2.clone(),
            edge_features: None,
        },
    ];
    let mut sys = System::new(&cfg, &insts, compile_gcn(&gcn).unwrap()).unwrap();
    sys.run().unwrap();
    let out1 = sys.output_matrix(0).unwrap();
    let out2 = sys.output_matrix(1).unwrap();

    // Each instance alone.
    for (inst, expected) in insts.iter().zip([out1, out2]) {
        let mut solo =
            System::new(&cfg, std::slice::from_ref(inst), compile_gcn(&gcn).unwrap()).unwrap();
        solo.run().unwrap();
        let diff = solo
            .output_matrix(0)
            .unwrap()
            .max_abs_diff(&expected)
            .unwrap();
        assert!(diff < 1e-5, "diff {diff}");
    }
}
