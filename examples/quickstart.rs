//! Quickstart: simulate a small GCN inference on the GNN accelerator and
//! verify it against the functional reference model.
//!
//! Run with `cargo run --release --example quickstart`.

use gnna::core::config::AcceleratorConfig;
use gnna::core::layers::compile_gcn;
use gnna::core::system::System;
use gnna::graph::datasets;
use gnna::models::{Gcn, GcnNorm};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A small citation-style dataset: 200 vertices, 64 features,
    //    7 output classes.
    let dataset = datasets::cora_scaled(200, 64, 7, 42)?;
    let instance = &dataset.instances[0];
    println!("graph: {}", instance.graph);

    // 2. The standard 2-layer GCN, using the accelerator's mean
    //    aggregation (the AGG divides by the neighborhood size).
    let gcn = Gcn::for_dataset(64, 16, 7, 7)?.with_norm(GcnNorm::Mean);

    // 3. Compile it to accelerator layers and simulate on the Table VI
    //    CPU iso-bandwidth configuration (1 tile + 1 memory node).
    let program = compile_gcn(&gcn)?;
    println!("compiled {} accelerator layers", program.layers.len());
    let config = AcceleratorConfig::cpu_iso_bandwidth();
    let mut system = System::new(&config, std::slice::from_ref(instance), program)?;
    let report = system.run()?;
    println!("{report}");

    // 4. The cycle-level datapath carries real values: compare against
    //    the functional model.
    let simulated = system.output_matrix(0)?;
    let reference = gcn.forward(&instance.graph, &instance.x)?;
    let diff = simulated.max_abs_diff(&reference)?;
    println!("max |simulated - functional| = {diff:.2e}");
    assert!(diff < 1e-3, "simulation diverged from the reference model");
    println!("OK: the simulated accelerator reproduces the functional GCN.");
    Ok(())
}
