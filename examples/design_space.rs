//! Design-space exploration: sweep tile counts, core clocks and GPE
//! thread pools on one workload and print the latency surface.
//!
//! This exercises the configuration system beyond the paper's three
//! named points — the kind of what-if exploration an architect would use
//! the simulator for.
//!
//! Run with `cargo run --release --example design_space`.

use gnna::core::config::{AcceleratorConfig, NodeKind, Topology};
use gnna::core::layers::compile_gcn;
use gnna::core::system::System;
use gnna::graph::datasets;
use gnna::models::{Gcn, GcnNorm};
use std::error::Error;

/// A 1-row topology with `tiles` tiles flanked by `mems` memory nodes.
fn strip_topology(tiles: usize, mems: usize) -> Result<Topology, Box<dyn Error>> {
    let mut row = Vec::new();
    for i in 0..mems.div_ceil(2) {
        let _ = i;
        row.push(NodeKind::Mem);
    }
    for _ in 0..tiles {
        row.push(NodeKind::Tile);
    }
    for _ in 0..mems / 2 {
        row.push(NodeKind::Mem);
    }
    Ok(Topology::from_grid(vec![row])?)
}

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = datasets::cora_scaled(600, 256, 7, 42)?;
    let instance = &dataset.instances[0];
    let gcn = Gcn::for_dataset(256, 16, 7, 7)?.with_norm(GcnNorm::Mean);

    println!("## Tiles × memory nodes (2.4 GHz core)\n");
    println!("| tiles | mem nodes | latency (us) | BW util (%) | DNA util (%) |");
    for (tiles, mems) in [(1, 1), (1, 2), (2, 2), (4, 2), (4, 4)] {
        let mut cfg = AcceleratorConfig::cpu_iso_bandwidth();
        cfg.name = format!("{tiles}T/{mems}M strip");
        cfg.topology = strip_topology(tiles, mems)?;
        let mut system = System::new(&cfg, std::slice::from_ref(instance), compile_gcn(&gcn)?)?;
        let r = system.run()?;
        println!(
            "| {tiles} | {mems} | {:.1} | {:.1} | {:.1} |",
            r.latency_s() * 1e6,
            r.bandwidth_utilization() * 100.0,
            r.dna_utilization() * 100.0
        );
    }

    println!("\n## Core clock (1 tile / 1 memory node)\n");
    println!("| clock (GHz) | latency (us) |");
    for clock in [0.6e9, 1.2e9, 2.4e9] {
        let cfg = AcceleratorConfig::cpu_iso_bandwidth().with_core_clock(clock);
        let mut system = System::new(&cfg, std::slice::from_ref(instance), compile_gcn(&gcn)?)?;
        let r = system.run()?;
        println!("| {:.1} | {:.1} |", clock / 1e9, r.latency_s() * 1e6);
    }

    println!("\n## GPE software threads (1 tile / 1 memory node)\n");
    println!("| threads | latency (us) | GPE util (%) |");
    for threads in [1, 4, 16, 64] {
        let mut cfg = AcceleratorConfig::cpu_iso_bandwidth();
        cfg.gpe_threads = threads;
        let mut system = System::new(&cfg, std::slice::from_ref(instance), compile_gcn(&gcn)?)?;
        let r = system.run()?;
        println!(
            "| {threads} | {:.1} | {:.1} |",
            r.latency_s() * 1e6,
            r.gpe_utilization() * 100.0
        );
    }
    Ok(())
}
