//! Molecular property inference with the MPNN benchmark: many small
//! graphs streaming through one accelerator tile.
//!
//! This is the workload class the paper's §VI-B singles out ("models
//! with very high compute requirement, such as MPNN, see the greatest
//! speedups"): the per-edge edge-network kernel and per-vertex GRU keep
//! the DNA saturated while the graphs are far too small to use a GPU
//! efficiently.
//!
//! Run with `cargo run --release --example mpnn_molecules`.

use gnna::core::config::AcceleratorConfig;
use gnna::core::layers::compile_mpnn;
use gnna::core::system::System;
use gnna::graph::datasets;
use gnna::models::Mpnn;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 60 synthetic molecules (~12 atoms each), QM9-style features.
    let dataset = datasets::qm9_scaled(60, 42)?;
    println!(
        "{} molecules, {} atoms, {} bonds total",
        dataset.instances.len(),
        dataset.total_nodes(),
        dataset.total_edges()
    );

    // The Gilmer MPNN: edge network messages, GRU updates, 3 steps,
    // graph-level readout of 73 targets.
    let mpnn = Mpnn::for_dataset_gilmer(13, 5, 64, 73, 3, 7)?;
    let program = compile_mpnn(&mpnn)?;
    let config = AcceleratorConfig::cpu_iso_bandwidth();
    let mut system = System::new(&config, &dataset.instances, program)?;
    let report = system.run()?;
    println!("{report}");

    // Verify a few molecules against the functional model.
    let reference = mpnn.forward_dataset(&dataset.instances)?;
    let mut worst = 0.0f32;
    for g in 0..dataset.instances.len() {
        let sim = system.output_matrix(g)?;
        let diff = sim
            .row(0)
            .iter()
            .zip(reference.row(g))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        worst = worst.max(diff);
    }
    println!("max |simulated - functional| over all molecules = {worst:.2e}");
    assert!(worst < 1e-3);
    println!(
        "throughput: {:.0} molecules/s at simulated speed",
        dataset.instances.len() as f64 / report.latency_s()
    );
    Ok(())
}
