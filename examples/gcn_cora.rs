//! Full-scale GCN-on-Cora inference: the first row of the paper's
//! evaluation, reproduced end to end.
//!
//! Simulates the 2-layer GCN on the 2708-vertex Cora stand-in across all
//! three Table VI accelerator configurations, reports latency, bandwidth
//! and DNA utilisation, and compares the speedups against the measured
//! Table VII baselines exactly as Figure 8 does.
//!
//! Run with `cargo run --release --example gcn_cora`.

use gnna::baselines::table7;
use gnna::core::config::AcceleratorConfig;
use gnna::core::layers::compile_gcn;
use gnna::core::system::System;
use gnna::graph::datasets;
use gnna::models::{Gcn, GcnNorm, ModelKind};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = datasets::cora(42)?;
    let instance = &dataset.instances[0];
    println!(
        "Cora stand-in: {} vertices, {} undirected edges, {} features, {:.3}% sparse",
        instance.graph.num_nodes(),
        instance.graph.num_undirected_edges(),
        instance.x.cols(),
        instance.graph.adjacency_sparsity() * 100.0
    );

    let gcn = Gcn::for_dataset(1433, 16, 7, 7)?.with_norm(GcnNorm::Mean);
    let baseline = table7::measured(ModelKind::Gcn, "Cora").expect("table VII row");
    println!(
        "measured baselines (Table VII): CPU {:.2} ms, GPU {:.3} ms\n",
        baseline.cpu_s * 1e3,
        baseline.gpu_s * 1e3
    );

    for config in [
        AcceleratorConfig::cpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_bandwidth(),
        AcceleratorConfig::gpu_iso_flops(),
    ] {
        let program = compile_gcn(&gcn)?;
        let mut system = System::new(&config, std::slice::from_ref(instance), program)?;
        let wall = Instant::now();
        let report = system.run()?;
        println!("{report}");
        println!(
            "  speedup: {:.2}x vs CPU, {:.2}x vs GPU  (simulated in {:.1?})\n",
            baseline.cpu_s / report.latency_s(),
            baseline.gpu_s / report.latency_s(),
            wall.elapsed()
        );
    }
    Ok(())
}
